"""Tests for the deterministic fault-injection harness (repro.testing.faults)."""

import pytest

from repro.testing import faults
from repro.testing.faults import FaultPlan, InjectedFault


PAYLOAD = {"workload": "facesim", "protocol": "c3d", "num_sockets": 2}


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


def test_crash_decisions_are_deterministic():
    plan = FaultPlan(seed=7, crash_rate=0.5)

    def crashes(key: str, attempt: int) -> bool:
        try:
            plan.inject_point_faults(key, PAYLOAD, attempt)
        except InjectedFault:
            return True
        return False

    keys = [f"key-{i}" for i in range(64)]
    first = [crashes(key, 1) for key in keys]
    second = [crashes(key, 1) for key in keys]
    assert first == second
    # A 50% rate over 64 keys crashes some but not all.
    assert any(first) and not all(first)
    # Retries re-roll: the attempt number participates in the decision.
    retried = [crashes(key, 2) for key in keys]
    assert retried != first


def test_different_seeds_draw_differently():
    a = [faults._roll(1, "crash", f"k{i}") for i in range(32)]
    b = [faults._roll(2, "crash", f"k{i}") for i in range(32)]
    assert a != b
    assert all(0.0 <= draw < 1.0 for draw in a + b)


# ----------------------------------------------------------------------
# Fault kinds
# ----------------------------------------------------------------------


def test_poison_matches_on_payload_subset():
    plan = FaultPlan(poison=({"workload": "facesim", "protocol": "c3d"},))
    assert plan.is_poison(PAYLOAD)
    assert not plan.is_poison({**PAYLOAD, "protocol": "baseline"})
    # A poison point fails on every attempt.
    for attempt in (1, 2, 3, 17):
        with pytest.raises(InjectedFault):
            plan.inject_point_faults("k", PAYLOAD, attempt)


def test_crash_attempts_pin_specific_attempts():
    plan = FaultPlan(crash_attempts=(1,))
    with pytest.raises(InjectedFault):
        plan.inject_point_faults("k", PAYLOAD, 1)
    plan.inject_point_faults("k", PAYLOAD, 2)  # retry succeeds


def test_mangle_append_truncates_or_corrupts():
    line = '{"key": "abc", "value": 12345, "check": "deadbeef"}\n'
    truncated = FaultPlan(seed=1, truncate_rate=1.0).mangle_append("k", line)
    assert line.startswith(truncated) and len(truncated) < len(line)
    corrupted = FaultPlan(seed=1, corrupt_rate=1.0).mangle_append("k", line)
    assert corrupted != line and len(corrupted) == len(line)
    assert corrupted.endswith("\n") and "!FAULT!" in corrupted
    # No rates -> the line passes through untouched.
    assert FaultPlan().mangle_append("k", line) == line


def test_store_append_fault_raises_oserror():
    plan = FaultPlan(store_error_rate=1.0)
    with pytest.raises(OSError):
        plan.inject_store_append_fault("k")
    FaultPlan().inject_store_append_fault("k")  # no-op without a rate


# ----------------------------------------------------------------------
# Env-var install path
# ----------------------------------------------------------------------


def test_env_round_trip_and_context_manager(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    assert faults.active() is None
    plan = FaultPlan(
        seed=7,
        crash_rate=0.2,
        crash_attempts=(1, 3),
        poison=({"workload": "streamcluster"},),
        hang_points=({"protocol": "baseline"},),
        hang_s=1.5,
        store_error_rate=0.1,
        truncate_rate=0.05,
        corrupt_rate=0.05,
    )
    with faults.injected(plan):
        assert faults.active() == plan
    assert faults.active() is None


def test_from_json_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown field"):
        FaultPlan.from_json('{"crash_rte": 0.2}')
    with pytest.raises(ValueError, match="not valid JSON"):
        FaultPlan.from_json("{nope")
    with pytest.raises(ValueError, match="JSON object"):
        FaultPlan.from_json("[1, 2]")
