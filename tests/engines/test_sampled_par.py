"""The ``sampled-par`` engine: bit-identity, degradation, and the jobs clamp.

The engine's whole contract is that parallel execution is an *execution*
detail: for every protocol and any job count, ``SampledSimulationStats``
(counters, confidence intervals, JSON form) and the result fields must be
byte-identical to ``engine=sampled`` -- including when workers are killed
mid-run and their ranges are retried inline by the parent (chaos tests
below), and when the nested-parallelism clamp forces the serial path.
"""

import json
import os
import signal
import time

import pytest

import repro.engines.sampled as sampled_module
import repro.engines.sampled_par as sampled_par_module
from repro.engines import WORKER_ENV, names
from repro.engines.sampled_par import effective_jobs
from repro.stats.sampling import SamplingPlan, SamplingUnit, partition_units
from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.testing import faults
from repro.workloads.registry import make_workload

SCALE = 1024
ACCESSES = 500
WARMUP = 100
PROTOCOLS = ["baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir"]

PLAN = SamplingPlan(
    num_units=4, detail=40, warmup=20, confidence=0.99, bias_floor=0.03, seed=5
)


def _run(protocol, engine, *, jobs=None, plan=PLAN):
    config = SystemConfig.dual_socket(
        protocol=protocol, num_sockets=2, cores_per_socket=2
    ).scaled(SCALE)
    system = NumaSystem(config)
    workload = make_workload(
        "streamcluster", scale=SCALE, accesses_per_thread=ACCESSES + WARMUP,
        num_threads=config.total_cores, seed=1,
    )
    engine_options = {"jobs": jobs} if jobs is not None else None
    result = Simulator(
        system, workload, engine=engine, sample_plan=plan,
        engine_options=engine_options,
    ).run(warmup_accesses_per_core=WARMUP, prewarm=True)
    return result, system


def _fingerprint(result):
    """The full observable outcome, in canonical JSON form."""
    return json.dumps(
        {
            "stats": result.stats.to_json_dict(),
            "total_time_ns": result.total_time_ns,
            "inter_socket_bytes": result.inter_socket_bytes,
            "accesses_executed": result.accesses_executed,
        },
        sort_keys=True,
        default=str,
    )


_SERIAL_CACHE = {}


def _serial_fingerprint(protocol):
    if protocol not in _SERIAL_CACHE:
        result, system = _run(protocol, "sampled")
        assert system.check_invariants() == []
        _SERIAL_CACHE[protocol] = _fingerprint(result)
    return _SERIAL_CACHE[protocol]


def test_sampled_par_registered():
    assert "sampled-par" in names()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_bit_identical_to_sampled(protocol, jobs):
    """Acceptance: byte-identical sampled output for all 5 protocols at
    jobs in {1, 2, 4}."""
    result, system = _run(protocol, "sampled-par", jobs=jobs)
    assert system.check_invariants() == []
    assert _fingerprint(result) == _serial_fingerprint(protocol)


# ----------------------------------------------------------------------
# Graceful degradation: dead / hung workers retried inline by the parent
# ----------------------------------------------------------------------


def test_sigkilled_worker_range_retried_inline(monkeypatch):
    """SIGKILL one range worker mid-run: the run completes and the output
    is still bit-identical (the parent re-measures the lost range)."""

    def kill_first_range(lo, hi):
        if lo == 0:
            os.kill(os.getpid(), signal.SIGKILL)

    monkeypatch.setattr(sampled_par_module, "_WORKER_TEST_HOOK", kill_first_range)
    result, system = _run("c3d", "sampled-par", jobs=2)
    assert system.check_invariants() == []
    assert _fingerprint(result) == _serial_fingerprint("c3d")


def test_hung_worker_killed_and_retried(monkeypatch):
    """A worker that exceeds the ``timeout_s`` engine option is killed by
    the watchdog and its range re-run inline, output unchanged."""

    def hang_first_range(lo, hi):
        if lo == 0:
            time.sleep(30.0)

    monkeypatch.setattr(sampled_par_module, "_WORKER_TEST_HOOK", hang_first_range)
    config = SystemConfig.dual_socket(
        protocol="c3d", num_sockets=2, cores_per_socket=2
    ).scaled(SCALE)
    system = NumaSystem(config)
    workload = make_workload(
        "streamcluster", scale=SCALE, accesses_per_thread=ACCESSES + WARMUP,
        num_threads=config.total_cores, seed=1,
    )
    result = Simulator(
        system, workload, engine="sampled-par", sample_plan=PLAN,
        engine_options={"jobs": 2, "timeout_s": 2.0},
    ).run(warmup_accesses_per_core=WARMUP, prewarm=True)
    assert system.check_invariants() == []
    assert _fingerprint(result) == _serial_fingerprint("c3d")


def test_repro_faults_cover_range_workers():
    """The deterministic chaos harness reaches the new workers: a poison
    matcher on the ``window-worker`` payload crashes every range worker,
    the parent retries everything inline, and the output is unchanged."""
    plan = faults.FaultPlan(seed=3, poison=({"kind": "window-worker"},))
    with faults.injected(plan):
        result, system = _run("baseline", "sampled-par", jobs=2)
    assert system.check_invariants() == []
    assert _fingerprint(result) == _serial_fingerprint("baseline")


# ----------------------------------------------------------------------
# Nested-parallelism clamp
# ----------------------------------------------------------------------


def test_effective_jobs_clamps_inside_workers(monkeypatch):
    monkeypatch.delenv(WORKER_ENV, raising=False)
    assert effective_jobs(None) == 1
    assert effective_jobs(1) == 1
    assert effective_jobs(0) == 1
    monkeypatch.setenv(WORKER_ENV, "1")
    assert effective_jobs(4) == 1


def test_effective_jobs_passthrough_on_fork_platforms(monkeypatch):
    monkeypatch.delenv(WORKER_ENV, raising=False)
    import multiprocessing

    expected = 4 if multiprocessing.get_start_method() == "fork" else 1
    assert effective_jobs(4) == expected


# ----------------------------------------------------------------------
# Window-range partitioning
# ----------------------------------------------------------------------


def _units(spans):
    return [SamplingUnit(fastforward=ff, warmup=w, detail=d) for ff, w, d in spans]


def test_partition_covers_all_units_contiguously():
    units = _units([(100, 20, 40)] * 8)
    for jobs in (1, 2, 3, 4, 8):
        ranges = partition_units(units, jobs)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(units)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        assert all(lo < hi for lo, hi in ranges)
        assert len(ranges) <= jobs


def test_partition_is_deterministic_and_balanced():
    # Window-dominated units (the parallel-bench shape): even split.
    units = _units([(25, 25, 250)] * 8)
    ranges = partition_units(units, 4)
    assert ranges == partition_units(units, 4)
    assert ranges == [(0, 2), (2, 4), (4, 6), (6, 8)]
    # Fast-forward-heavy units: the later ranges shrink, because a range's
    # cost includes replaying the whole functional prefix before it.
    heavy = _units([(1000, 20, 40)] * 8)
    head, tail = partition_units(heavy, 4)[0], partition_units(heavy, 4)[-1]
    assert head[1] - head[0] >= tail[1] - tail[0]


def test_partition_never_exceeds_windowed_unit_count():
    units = _units([(100, 20, 40), (100, 0, 0), (100, 20, 40)])
    ranges = partition_units(units, 8)
    # Only 2 measured windows exist; extra jobs collapse away.
    assert len(ranges) <= 2


def test_partition_single_job_is_one_range():
    units = _units([(100, 20, 40)] * 4)
    assert partition_units(units, 1) == [(0, len(units))]


# ----------------------------------------------------------------------
# Isolation strategies agree
# ----------------------------------------------------------------------


def test_fork_and_deepcopy_window_isolation_are_state_identical(monkeypatch):
    """The deepcopy fallback path (non-POSIX platforms) must produce the
    same windows as the forked copy-on-write path."""
    monkeypatch.setattr(sampled_module, "_FORCE_COPY_ISOLATION", True)
    result, system = _run("baseline", "sampled")
    assert system.check_invariants() == []
    assert _fingerprint(result) == _serial_fingerprint("baseline")
