"""Store-key stability: engine names are part of the persistence contract.

The results store keys (docs/campaigns.md) hash the engine *name* along with
everything else that determines a simulation's outcome.  The engine-registry
refactor must not move existing stored results: these hashes were computed
on the pre-refactor tree and pin the exact byte-level keys for
representative object / compiled / sampled points.  If one of these fails,
either something outcome-relevant leaked into the payloads (bump
``STORE_SCHEMA_VERSION`` instead) or an engine was renamed (don't -- the
built-in names are stable).
"""

from repro.experiments.common import ExperimentContext, ExperimentSettings
from repro.experiments.runner import SweepPoint, sweep_point_key
from repro.stats.store import content_key

#: Byte-identical SHA-256 content keys captured before the engines/ refactor.
PINNED_SWEEP_KEYS = {
    ("default", "compiled"):
        "0af8e31a3bc083c240599c2e8f10ef02f0b7b6bb8f0d72335a2920566b2ea887",
    ("default", "object"):
        "b7b8a079965122f20a74637386671d5d5763298fa7f6c80bb4dc8e1252fb3996",
    ("sampled-plan", "compiled"):
        "206cba204ea870578ae7172eea52431cc49ad0df999ef5d3d7a3705308e17d09",
    ("scenario", "compiled"):
        "3aa16f280ee2144279c2b2a5bc6729b945971fa76432de65e810049a27325eb0",
    # vector points hash to their own keys (captured when the engine
    # landed): results computed by the batch path are cached separately
    # from object/compiled results even though they are bit-identical.
    ("default", "vector"):
        "339f0224a6e8d85a81a464e40af52e17c16f59306d358d3a4d994c309562d59c",
    ("scenario", "vector"):
        "c3ba9428e021d62d7db0d02f874518a87c315b17d77dfc1ff434583c75e30219",
}

PINNED_CONTEXT_KEYS = {
    "object": "976441b0ec85f44673c2a65150bee7cd01fb69a2e32267b101c57df439e6299d",
    "compiled": "2e921aa77677b244c3fc1de0c584542563fe7917396de6483c7b1fab9d021ec2",
    "vector": "d5e0c9ed344218932608a8990bc1678144296f461a54ec85d7e48672f6aa19fe",
}


def _point(kind: str) -> SweepPoint:
    if kind == "default":
        return SweepPoint()
    if kind == "sampled-plan":
        # A sample_plan forces engine="sampled" into the payload regardless
        # of the engine argument (see sweep_point_payload).
        return SweepPoint(sample_plan="units=8,detail=150,warmup=100")
    assert kind == "scenario"
    return SweepPoint(scenario="het-quad")


def test_sweep_point_keys_are_byte_identical_to_pre_refactor():
    for (kind, engine), expected in PINNED_SWEEP_KEYS.items():
        assert sweep_point_key(_point(kind), engine) == expected, (kind, engine)


def test_context_run_keys_are_byte_identical_to_pre_refactor():
    for engine, expected in PINNED_CONTEXT_KEYS.items():
        context = ExperimentContext(ExperimentSettings.quick(), engine=engine)
        config = context.make_config("c3d")
        key = content_key(context.store_payload("facesim", "c3d", config))
        assert key == expected, engine


def test_every_engine_hashes_to_a_distinct_key():
    """No two engines may share a store key: bit-identical results are
    still cached per engine, so a vector run never aliases an object run."""
    sweep_keys = {
        engine: sweep_point_key(SweepPoint(), engine)
        for engine in ("object", "compiled", "vector")
    }
    assert len(set(sweep_keys.values())) == len(sweep_keys)


def test_sampled_par_aliases_to_sampled_store_keys():
    """``sampled-par`` is bit-identical to ``sampled`` by contract, so its
    ``store_name`` aliases every key to the serial engine's: parallel runs
    share the serial cache entries, and the pre-existing pinned sampled-plan
    key stays byte-identical."""
    point = _point("sampled-plan")
    assert (
        sweep_point_key(point, "sampled-par")
        == PINNED_SWEEP_KEYS[("sampled-plan", "compiled")]
    )
    # Without a pinned plan the alias still holds (both derive the plan).
    assert sweep_point_key(SweepPoint(), "sampled-par") == sweep_point_key(
        SweepPoint(), "sampled"
    )


def test_engine_jobs_never_reaches_store_keys():
    """The jobs knob shapes execution, not output: any value hashes to the
    same key, for parallel and serial engines alike."""
    for engine in ("sampled-par", "sampled", "compiled"):
        keys = {
            sweep_point_key(SweepPoint(engine_jobs=jobs), engine)
            for jobs in (None, 1, 2, 4)
        }
        assert len(keys) == 1, engine
    assert (
        sweep_point_key(SweepPoint(engine_jobs=4))
        == PINNED_SWEEP_KEYS[("default", "compiled")]
    )


def test_clone_points_key_separately_without_moving_old_keys():
    """The clone frontend joins the payload only when used: a default point
    still hashes to its pre-clone pinned key (asserted above), while a clone
    point gets its own key independent of the placeholder workload."""
    clone_key = sweep_point_key(SweepPoint(clone="work/clone.json"))
    assert clone_key != PINNED_SWEEP_KEYS[("default", "compiled")]
    relabelled = SweepPoint(workload="canneal", clone="work/clone.json")
    assert sweep_point_key(relabelled) == clone_key
