"""Differential harness: vector == object == compiled, byte for byte.

Property-based counterpart to ``tests/system/test_engine_equivalence.py``:
instead of a handful of curated workloads, hypothesis composes random
per-thread traces from adversarial building blocks -- dwell runs that sit
on one block (long hit runs), sweeps that walk fresh blocks (miss trains),
ping-pongs over a shared block pair (coherence traffic), store bursts that
overflow the store buffer, and write-then-read pairs that exercise
store-to-load forwarding -- then runs all three exact engines over the
same trace and requires bit-identical statistics.

The vector engine's batching constants are pinned tiny for the duration of
the module so that even short traces cross chunk boundaries, exhaust
derive windows at awkward offsets, trigger the fast-fraction probe and
take scalar bursts: the run lengths hypothesis draws (1..48) straddle
every one of those seams.
"""

import pytest

try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover - hypothesis is in the CI test env
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.engines.vector import VectorEngine, _vectorizable
from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.trace import MemoryAccess

PROTOCOLS = ("baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir")
BLOCK = 64
NUM_THREADS = 4  # dual-socket, 2 cores per socket

#: Region bases: one private region per thread plus two regions shared by
#: every thread (the shared ones generate invalidations/downgrades that
#: land in other cores' change logs mid-batch).
_PRIVATE_BASE = 0x400_0000
_SHARED_A = 0x10_0000
_SHARED_B = 0x20_0000
_REGION_BLOCKS = 96


@pytest.fixture(autouse=True, scope="module")
def tiny_batches():
    """Pin the vector engine's batching constants to adversarial values."""
    saved = {
        name: getattr(VectorEngine, name)
        for name in (
            "chunk_size", "chunk_initial", "derive_window",
            "bail_after", "burst_accesses", "burst_cap",
        )
    }
    VectorEngine.chunk_size = 32
    VectorEngine.chunk_initial = 8
    VectorEngine.derive_window = 4
    VectorEngine.bail_after = 16
    VectorEngine.burst_accesses = 8
    VectorEngine.burst_cap = 24
    yield
    for name, value in saved.items():
        setattr(VectorEngine, name, value)


class _ListWorkload:
    """Minimal workload frontend: fixed per-thread MemoryAccess lists."""

    name = "differential"

    def __init__(self, per_thread):
        self._per_thread = per_thread
        self.num_threads = len(per_thread)

    def stream(self, thread_id):
        return iter(self._per_thread[thread_id])


def _segment_accesses(thread_id, seg):
    """Materialise one (kind, region, start, length, write, gap) segment."""
    kind, region, start, length, write, gap = seg
    if region == "private":
        base = _PRIVATE_BASE + thread_id * _REGION_BLOCKS * BLOCK * 2
    elif region == "shared-a":
        base = _SHARED_A
    else:
        base = _SHARED_B
    out = []
    for i in range(length):
        if kind == "dwell":
            block = start
        elif kind == "sweep":
            block = start + i
        else:  # ping-pong between two neighbouring blocks
            block = start + (i & 1)
        addr = base + (block % _REGION_BLOCKS) * BLOCK
        if kind == "forward":
            # Write then immediately read back: store-to-load forwarding.
            is_write = (i & 1) == 0
        else:
            is_write = write
        out.append(MemoryAccess(addr=addr, is_write=is_write, gap=gap))
    return out


_segment = st.tuples(
    st.sampled_from(("dwell", "sweep", "pingpong", "forward")),
    st.sampled_from(("private", "shared-a", "shared-b")),
    st.integers(min_value=0, max_value=_REGION_BLOCKS - 1),
    st.integers(min_value=1, max_value=48),  # crosses chunk_size=32 windows
    st.booleans(),
    st.integers(min_value=0, max_value=3),
)

_thread_trace = st.lists(_segment, min_size=1, max_size=6)


def _key(result):
    stats = result.stats
    return (
        result.accesses_executed,
        result.inter_socket_bytes,
        result.total_time_ns,
        tuple(sorted(stats.as_dict().items())),
        tuple(sorted(stats.core_finish_ns.items())),
    )


def _run(protocol, engine, per_thread, warmup):
    config = SystemConfig.dual_socket(
        protocol=protocol, num_sockets=2, cores_per_socket=2
    ).scaled(1024)
    system = NumaSystem(config)
    workload = _ListWorkload(per_thread)
    simulator = Simulator(system, workload, engine=engine)
    result = simulator.run(prewarm=True, warmup_accesses_per_core=warmup)
    assert system.check_invariants() == []
    return _key(result)


@settings(max_examples=30, deadline=None, derandomize=True)
@given(
    protocol=st.sampled_from(PROTOCOLS),
    traces=st.lists(_thread_trace, min_size=NUM_THREADS, max_size=NUM_THREADS),
    warmup=st.sampled_from((0, 7)),
)
def test_engines_bit_identical_on_random_interleavings(protocol, traces, warmup):
    per_thread = [
        [a for seg in thread_segments for a in _segment_accesses(tid, seg)]
        for tid, thread_segments in enumerate(traces)
    ]
    reference = _run(protocol, "object", per_thread, warmup)
    assert _run(protocol, "compiled", per_thread, warmup) == reference
    assert _run(protocol, "vector", per_thread, warmup) == reference


def test_differential_config_takes_the_batch_path():
    """Guard the harness against silently testing the scalar fallback."""
    config = SystemConfig.dual_socket(
        protocol="c3d", num_sockets=2, cores_per_socket=2
    ).scaled(1024)
    system = NumaSystem(config)
    assert _vectorizable(system, range(config.total_cores))


def test_bench_gate_config_takes_the_batch_path():
    """The CI vector-bench gate must measure batching, not the fallback."""
    config = SystemConfig.quad_socket(protocol="baseline").scaled(1)
    system = NumaSystem(config)
    assert _vectorizable(system, range(config.total_cores))
