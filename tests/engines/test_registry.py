"""Tests for the execution-engine registry and the pluggable interface."""

import pytest

from repro import engines
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.registry import make_workload

from ..conftest import tiny_config

BUILTINS = ("compiled", "object", "sampled")


def test_builtins_registered_in_order():
    assert engines.names()[:3] == BUILTINS


def test_unknown_engine_error_lists_registered_names():
    with pytest.raises(ValueError) as excinfo:
        engines.get("warp-drive")
    message = str(excinfo.value)
    assert "warp-drive" in message
    for name in BUILTINS:
        assert name in message


def test_validate_returns_the_name():
    assert engines.validate("compiled") == "compiled"


def test_capability_flags_of_builtins():
    assert engines.get("sampled").supports_sampling
    assert not engines.get("compiled").supports_sampling
    assert not engines.get("object").supports_sampling
    assert engines.get("compiled").supports_trace_compile
    assert not engines.get("object").supports_trace_compile
    for name in BUILTINS:
        assert engines.get(name).deterministic
        caps = engines.get(name).capabilities()
        assert set(caps) == {
            "supports_sampling", "supports_trace_compile", "deterministic"
        }


def test_duplicate_registration_rejected_unless_replace():
    cls = engines.get("compiled")
    with pytest.raises(ValueError, match="already registered"):
        engines.register(cls)
    assert engines.register(cls, replace=True) is cls


def test_register_requires_engine_subclass_with_name():
    with pytest.raises(TypeError):
        engines.register(object)

    class Nameless(engines.ExecutionEngine):
        def run(self, context, *, max_accesses_per_core=None,
                warmup_accesses_per_core=0):
            raise NotImplementedError

    with pytest.raises(ValueError, match="name"):
        engines.register(Nameless)


def test_simulator_rejects_sample_plan_for_non_sampling_engine():
    from repro.stats.sampling import SamplingPlan

    system = NumaSystem(tiny_config("c3d"))
    workload = make_workload("streamcluster", scale=4096, accesses_per_thread=10,
                             num_threads=2)
    with pytest.raises(ValueError, match="sampled"):
        Simulator(system, workload, engine="compiled", sample_plan=SamplingPlan())


def test_third_party_engine_plugs_into_simulator_and_legacy_alias():
    """A registered engine is valid everywhere at once -- the subsystem's point."""

    class TracingEngine(engines.CompiledEngine):
        name = "test-tracing"
        runs = 0

        def run(self, context, **kwargs):
            type(self).runs += 1
            return super().run(context, **kwargs)

    engines.register(TracingEngine)
    try:
        # Live through the legacy alias too.
        from repro.system import simulator
        assert "test-tracing" in simulator.ENGINES
        assert "test-tracing" in engines.names()

        def run(engine):
            system = NumaSystem(tiny_config("c3d"))
            workload = make_workload(
                "streamcluster", scale=4096, accesses_per_thread=50,
                num_threads=2, seed=2,
            )
            return Simulator(system, workload, engine=engine).run()

        result = run("test-tracing")
        assert TracingEngine.runs == 1
        reference = run("compiled")
        assert result.stats.as_dict() == reference.stats.as_dict()
    finally:
        engines.unregister("test-tracing")
    assert "test-tracing" not in engines.names()


def test_sweep_payload_keys_third_party_sampling_engine_under_its_name():
    """A caller-selected sampling engine keys (and runs) under its own name;
    only non-sampling engines fall back to the built-in 'sampled'."""
    from repro.experiments.runner import SweepPoint, sweep_point_payload

    class SamplingVariant(engines.SampledEngine):
        name = "test-sampling-variant"

    engines.register(SamplingVariant)
    try:
        point = SweepPoint(sample_plan="units=8,detail=150,warmup=100")
        payload = sweep_point_payload(point, "test-sampling-variant")
        assert payload["engine"] == "test-sampling-variant"
        assert sweep_point_payload(point, "compiled")["engine"] == "sampled"
    finally:
        engines.unregister("test-sampling-variant")


def test_campaign_spec_validates_engine_through_registry():
    from repro.experiments.campaign import CampaignError, CampaignSpec

    with pytest.raises(CampaignError) as excinfo:
        CampaignSpec.from_dict({
            "name": "x", "engine": "warp-drive",
            "sweeps": [{"workloads": ["facesim"],
                        "topologies": [{"sockets": 2, "cores_per_socket": 1}]}],
        })
    assert "registered engines" in str(excinfo.value)


def test_run_sweep_validates_engine_up_front(tmp_path):
    from repro.experiments.runner import SweepPoint, run_sweep

    with pytest.raises(ValueError, match="registered engines"):
        run_sweep([SweepPoint()], engine="warp-drive")


def test_experiment_context_validates_engine():
    from repro.experiments.common import ExperimentContext

    with pytest.raises(ValueError, match="registered engines"):
        ExperimentContext(engine="warp-drive")
