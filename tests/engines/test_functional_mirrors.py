"""Lean functional mirrors vs the generic fallback: bit-identical state.

The coherence protocols' ``read_miss_functional`` / ``write_miss_functional``
/ ``llc_eviction_functional`` lean mirrors exist purely for fast-forward
speed; the *definition* of correct is the generic base-class fallback, which
runs the timed entry points under the sampled engine's functional-timing
stubs and is therefore state-exact by construction.  These tests run the
same sampled simulation twice -- once with the protocol's lean mirrors,
once with the mirrors forced back to the generic fallback -- and assert the
complete sampled output (detail-window counters, per-metric estimates,
inter-socket bytes) is bit-identical.  Any state drift in a lean mirror
shifts what the detail windows measure, so divergence fails loudly here
long before it could pass the (much looser) CI-containment checks.
"""

import pytest

from repro.coherence.protocol_base import GlobalCoherenceProtocol
from repro.stats.sampling import SamplingPlan
from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.registry import make_workload

SCALE = 1024
ACCESSES = 700
WARMUP = 100

PLAN = SamplingPlan(num_units=4, detail=50, warmup=30, confidence=0.99, seed=9)

#: (protocol, broadcast_filter) pairs that ship lean mirror overrides.
LEAN_PROTOCOLS = [("baseline", False), ("c3d", False), ("c3d", True)]

_GENERIC_MIRRORS = (
    "read_miss_functional",
    "write_miss_functional",
    "llc_eviction_functional",
)


def _run_sampled(protocol: str, broadcast_filter: bool, *, force_generic: bool):
    config = SystemConfig.quad_socket(
        protocol=protocol, num_sockets=2, cores_per_socket=2,
        broadcast_filter=broadcast_filter,
    ).scaled(SCALE)
    system = NumaSystem(config)
    if force_generic:
        for name in _GENERIC_MIRRORS:
            generic = getattr(GlobalCoherenceProtocol, name)
            setattr(system.protocol, name, generic.__get__(system.protocol))
    workload = make_workload(
        "facesim", scale=SCALE, accesses_per_thread=ACCESSES,
        num_threads=config.total_cores, seed=13,
    )
    result = Simulator(system, workload, engine="sampled", sample_plan=PLAN).run(
        warmup_accesses_per_core=WARMUP, prewarm=True
    )
    return result, system


@pytest.mark.parametrize("protocol,broadcast_filter", LEAN_PROTOCOLS)
def test_lean_mirrors_match_generic_fallback_bit_for_bit(protocol, broadcast_filter):
    lean, lean_system = _run_sampled(protocol, broadcast_filter, force_generic=False)
    generic, _ = _run_sampled(protocol, broadcast_filter, force_generic=True)

    if not broadcast_filter:
        # With the broadcast filter on, a stale private classification can
        # legitimately skip an invalidation (a modelled property of the
        # paper's section IV-D mechanism that pre-dates the engines
        # subsystem and shows up identically on the exact engines), so the
        # SWMR invariant only gates the unfiltered designs here.  The
        # bit-identity assertions below are the point of this test and
        # apply to every case.
        assert lean_system.check_invariants() == []
    assert lean.stats.to_json_dict() == generic.stats.to_json_dict()
    assert lean.accesses_executed == generic.accesses_executed
    assert lean.inter_socket_bytes == generic.inter_socket_bytes
    assert lean.total_time_ns == generic.total_time_ns


def test_protocols_with_lean_mirrors_actually_override():
    """Guard the parametrization above: these designs define lean mirrors."""
    for protocol, broadcast_filter in LEAN_PROTOCOLS:
        config = SystemConfig.quad_socket(
            protocol=protocol, num_sockets=2, cores_per_socket=2,
            broadcast_filter=broadcast_filter,
        ).scaled(SCALE)
        system = NumaSystem(config)
        for name in _GENERIC_MIRRORS:
            assert getattr(type(system.protocol), name) is not getattr(
                GlobalCoherenceProtocol, name
            ), (protocol, name)
