"""Tests for the TSO store buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.store_buffer import StoreBuffer


def test_push_and_drain():
    buffer = StoreBuffer(capacity=4)
    buffer.push(0.0, block=1, completion_time=10.0)
    assert len(buffer) == 1
    buffer.drain(5.0)
    assert len(buffer) == 1
    buffer.drain(10.0)
    assert len(buffer) == 0


def test_store_to_load_forwarding():
    buffer = StoreBuffer()
    buffer.push(0.0, block=7, completion_time=100.0)
    assert buffer.forwards(7, now=1.0)
    assert not buffer.forwards(8, now=1.0)
    # After the store completes and drains, no forwarding.
    assert not buffer.forwards(7, now=200.0)
    assert buffer.forward_hits == 1


def test_full_buffer_stalls_until_oldest_retires():
    buffer = StoreBuffer(capacity=2)
    buffer.push(0.0, block=0, completion_time=50.0)
    buffer.push(0.0, block=1, completion_time=60.0)
    result = buffer.push(10.0, block=2, completion_time=70.0)
    assert result.stall_ns == pytest.approx(40.0)
    assert buffer.stalls == 1
    assert buffer.total_stall_ns == pytest.approx(40.0)


def test_in_order_drain_serialises_completions():
    buffer = StoreBuffer()
    buffer.push(0.0, block=0, completion_time=100.0)
    buffer.push(0.0, block=1, completion_time=20.0)
    # The second store cannot complete before the first (TSO order).
    assert buffer.next_drain_time(0.0) == pytest.approx(100.0)


def test_next_drain_time_when_empty_is_now():
    buffer = StoreBuffer()
    assert buffer.next_drain_time(42.0) == 42.0


def test_capacity_validation():
    with pytest.raises(ValueError):
        StoreBuffer(capacity=0)


def test_occupancy():
    buffer = StoreBuffer()
    assert buffer.occupancy() == 0
    buffer.push(0.0, 1, 5.0)
    assert buffer.occupancy() == 1


@settings(max_examples=60)
@given(st.lists(st.tuples(st.floats(0, 1e4), st.floats(0, 1e4)), min_size=1, max_size=80))
def test_occupancy_never_exceeds_capacity_and_completions_monotone(stores):
    buffer = StoreBuffer(capacity=8)
    now = 0.0
    completions = []
    for delta_now, latency in stores:
        now += delta_now
        result = buffer.push(now, block=0, completion_time=now + latency)
        assert len(buffer) <= 8
        assert result.issue_time >= now
        if buffer._entries:
            completions.append(buffer._entries[-1][0])
    assert completions == sorted(completions)
