"""Tests for the per-core TLB."""

import pytest

from repro.cpu.tlb import TLB


def test_miss_then_hit():
    tlb = TLB(entries=4)
    assert tlb.access(1) == 0.0  # default miss penalty is zero
    assert tlb.misses == 1
    tlb.access(1)
    assert tlb.hits == 1
    assert 1 in tlb


def test_miss_penalty_charged():
    tlb = TLB(entries=4, miss_penalty_ns=30.0)
    assert tlb.access(1) == 30.0
    assert tlb.access(1) == 0.0


def test_lru_eviction():
    tlb = TLB(entries=2)
    tlb.access(1)
    tlb.access(2)
    tlb.access(1)      # make page 2 the LRU entry
    tlb.access(3)      # evicts page 2
    assert 2 not in tlb
    assert 1 in tlb and 3 in tlb
    assert len(tlb) == 2


def test_flush():
    tlb = TLB(entries=4)
    tlb.access(1)
    tlb.flush()
    assert len(tlb) == 0


def test_hit_rate():
    tlb = TLB(entries=4)
    assert tlb.hit_rate() == 0.0
    tlb.access(1)
    tlb.access(1)
    assert tlb.hit_rate() == pytest.approx(0.5)


def test_requires_positive_entries():
    with pytest.raises(ValueError):
        TLB(entries=0)
