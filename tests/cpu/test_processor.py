"""Tests for the simple 1-IPC timing core."""


from repro.workloads.trace import MemoryAccess

from ..conftest import block_homed_at, tiny_system


def make_core(system, core_id=0):
    return system.cores[core_id]


def test_instruction_gap_advances_clock():
    system = tiny_system("baseline")
    core = make_core(system)
    block = block_homed_at(system, home=0)
    core.execute(MemoryAccess(addr=block * 64, is_write=False, gap=30))
    # 30 instructions at 1 IPC / 3 GHz = 10 ns, plus the memory latency.
    assert core.time >= 30 * core.cycle_ns
    assert core.instructions == 31
    assert system.stats.reads == 1


def test_load_blocks_for_memory_latency():
    system = tiny_system("baseline")
    core = make_core(system)
    block = block_homed_at(system, home=0)
    core.execute(MemoryAccess(addr=block * 64, is_write=False, gap=0))
    assert core.time >= system.config.memory.latency_ns


def test_store_latency_is_hidden_by_store_buffer():
    system = tiny_system("baseline")
    core = make_core(system)
    block = block_homed_at(system, home=1)  # remote write, slow transaction
    before = core.time
    core.execute(MemoryAccess(addr=block * 64, is_write=True, gap=0))
    # The core only pays one cycle, not the full write transaction.
    assert core.time - before < 2 * core.cycle_ns + 1e-9
    assert system.stats.writes == 1
    assert core.store_buffer.occupancy() == 1


def test_store_to_load_forwarding_avoids_memory():
    system = tiny_system("baseline")
    core = make_core(system)
    block = block_homed_at(system, home=1)
    core.execute(MemoryAccess(addr=block * 64, is_write=True, gap=0))
    reads_before = system.stats.memory_reads
    core.execute(MemoryAccess(addr=block * 64 + 8, is_write=False, gap=0))
    assert system.stats.store_forward_hits == 1
    assert system.stats.memory_reads == reads_before


def test_read_latency_recorded_in_stats():
    system = tiny_system("baseline")
    core = make_core(system)
    block = block_homed_at(system, home=0)
    core.execute(MemoryAccess(addr=block * 64, is_write=False, gap=0))
    assert system.stats.read_latency.count == 1
    assert system.stats.read_latency.mean >= system.config.memory.latency_ns


def test_cores_map_to_sockets():
    system = tiny_system("c3d", num_sockets=2, cores_per_socket=2)
    assert system.cores[0].socket.socket_id == 0
    assert system.cores[3].socket.socket_id == 1
    assert system.cores[3].local_core_index == 1


def test_repeated_stores_fill_and_stall_the_buffer():
    system = tiny_system("baseline")
    core = make_core(system)
    capacity = core.store_buffer.capacity
    # Issue more distinct remote stores than the buffer can hold back-to-back.
    for i in range(capacity + 8):
        block = block_homed_at(system, home=1, index=i)
        core.execute(MemoryAccess(addr=block * 64, is_write=True, gap=0))
    assert system.stats.store_buffer_stalls > 0
    assert system.stats.store_buffer_stall_ns > 0.0
