"""Regenerate the committed ingestion goldens after a deliberate change.

Usage::

    PYTHONPATH=src python tests/golden/regen_ingest.py

Rebuilds ``ingest_tiny/`` (a tiny trace directory imported from an inline
lackey source) and ``ingest_tiny_profile.json`` (its pinned analyzer
profile).  The drift test is ``tests/workloads/test_analyzer.py``; only run
this when an analyzer or importer behaviour change is intended.
"""

import json
import os
import shutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.workloads.analyzer import analyze_trace_dir  # noqa: E402
from repro.workloads.importers import import_lackey  # noqa: E402

#: The tiny deterministic lackey source the golden trace dir is imported
#: from: two pages of data, a read-modify-write, and some instruction gaps.
LACKEY_SOURCE = """\
==42== golden ingest specimen
I  00400000,2
 L 00010000,8
I  00400002,3
 S 00010040,4
 M 00011000,4
I  00400005,1
 L 00010000,8
 S 00012000,8
"""


def main() -> None:
    here = Path(__file__).resolve().parent
    source = here / "ingest_tiny.lackey"
    source.write_text(LACKEY_SOURCE)
    directory = here / "ingest_tiny"
    shutil.rmtree(directory, ignore_errors=True)
    # Import with a bare relative source path so the committed manifest's
    # `imported_from.source` is checkout-independent.
    os.chdir(here)
    import_lackey(source.name, directory, name="ingest-tiny")
    profile = analyze_trace_dir(directory)
    # The profile's source field is machine-specific; pin it relative.
    profile["source"] = "tests/golden/ingest_tiny"
    out = here / "ingest_tiny_profile.json"
    out.write_text(json.dumps(profile, indent=2) + "\n")
    print(f"wrote {directory}/ and {out}")


if __name__ == "__main__":
    main()
