"""Regenerate ``throughput_smoke.json`` after a deliberate model change.

Usage::

    PYTHONPATH=src python tests/golden/regen.py

Only run this when a simulation-behaviour change is intended; the golden
drift test (``tests/system/test_golden_stats.py``) exists precisely to make
accidental behaviour changes fail CI.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.system.config import SystemConfig  # noqa: E402
from repro.system.numa_system import NumaSystem  # noqa: E402
from repro.system.simulator import Simulator  # noqa: E402
from repro.workloads.registry import make_workload  # noqa: E402

INT_COUNTERS = [
    "instructions", "reads", "writes", "store_forward_hits",
    "l1_hits", "l1_misses", "llc_hits", "llc_misses", "llc_peer_hits",
    "dram_cache_hits", "dram_cache_misses",
    "served_local_memory", "served_remote_memory", "served_remote_llc",
    "served_remote_dram_cache", "served_local_dram_cache",
    "memory_reads_local", "memory_reads_remote",
    "memory_writes_local", "memory_writes_remote",
    "directory_lookups", "invalidations_sent",
    "broadcasts", "broadcasts_elided", "downgrades", "writebacks",
    "write_throughs", "upgrades",
]

SCALE = 1024
ACCESSES = 200
WORKLOAD = "facesim"


def main() -> None:
    golden = {
        "scale": SCALE,
        "accesses_per_core": ACCESSES,
        "workload": WORKLOAD,
        "protocols": {},
    }
    for protocol in ("baseline", "c3d"):
        config = SystemConfig.quad_socket(protocol=protocol).scaled(SCALE)
        system = NumaSystem(config)
        workload = make_workload(
            WORKLOAD, scale=SCALE, accesses_per_thread=ACCESSES,
            num_threads=config.total_cores,
        )
        result = Simulator(system, workload).run(prewarm=True)
        entry = {name: getattr(result.stats, name) for name in INT_COUNTERS}
        entry["accesses_executed"] = result.accesses_executed
        entry["inter_socket_bytes"] = result.inter_socket_bytes
        golden["protocols"][protocol] = entry

    out = Path(__file__).resolve().parent / "throughput_smoke.json"
    out.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
