"""Tests for the abstract protocol model used by the model checker."""

from repro.verification.protocol_model import (
    AbstractMachineState,
    BlockState,
    C3DAbstractModel,
    ProtocolVariant,
)


def make_model(variant=ProtocolVariant.CLEAN, sockets=2):
    return C3DAbstractModel(num_sockets=sockets, variant=variant)


def test_initial_state_is_clean_and_invalid():
    model = make_model()
    state = model.initial_state()
    assert state.memory_fresh
    assert all(s.llc is BlockState.I and not s.dram_valid for s in state.sockets)
    assert state.directory.state is BlockState.I
    assert not model.check_invariants(state, "<init>")


def test_write_makes_writer_the_unique_fresh_copy():
    model = make_model()
    state = model.write(model.initial_state(), 0)
    assert state.sockets[0].llc is BlockState.M
    assert state.sockets[0].llc_fresh
    assert not state.memory_fresh
    assert state.directory.state is BlockState.M
    assert state.directory.owner == 0


def test_read_after_remote_write_forwards_fresh_data():
    model = make_model()
    state = model.write(model.initial_state(), 0)
    state = model.read(state, 1)
    assert model.last_read_was_fresh()
    assert state.sockets[1].llc is BlockState.S
    assert state.memory_fresh            # write-through on the M -> S downgrade
    assert state.directory.state is BlockState.S
    assert state.directory.sharers == frozenset({0, 1})


def test_clean_llc_eviction_retains_clean_dram_copy_and_updates_memory():
    model = make_model()
    state = model.write(model.initial_state(), 0)
    state = model.llc_evict(state, 0)
    socket = state.sockets[0]
    assert socket.llc is BlockState.I
    assert socket.dram_valid and socket.dram_fresh and not socket.dram_dirty
    assert state.memory_fresh
    assert state.directory.state is BlockState.I  # PutX -> Invalid in plain C3D


def test_dirty_variant_keeps_dirty_dram_copy_and_stale_memory():
    model = make_model(ProtocolVariant.DIRTY_FULL_DIR)
    state = model.write(model.initial_state(), 0)
    state = model.llc_evict(state, 0)
    socket = state.sockets[0]
    assert socket.dram_dirty
    assert not state.memory_fresh
    assert state.directory.state is BlockState.M


def test_untracked_write_broadcast_invalidates_remote_dram_copies():
    model = make_model()
    state = model.write(model.initial_state(), 0)
    state = model.llc_evict(state, 0)       # socket 0: clean DRAM copy, untracked
    state = model.write(state, 1)            # broadcast must remove socket 0's copy
    assert not state.sockets[0].dram_valid
    assert not state.sockets[0].llc is BlockState.M
    assert state.directory.owner == 1


def test_broken_variant_leaves_stale_copy_behind():
    model = make_model(ProtocolVariant.BROKEN_NO_BROADCAST)
    state = model.write(model.initial_state(), 0)
    state = model.llc_evict(state, 0)
    state = model.write(state, 1)
    # The stale clean copy survives in socket 0's DRAM cache...
    assert state.sockets[0].dram_valid
    assert not state.sockets[0].dram_fresh
    # ...and a subsequent local read observes stale data.
    model.read(state, 0)
    assert not model.last_read_was_fresh()


def test_actions_enumeration_includes_evictions_only_when_enabled():
    model = make_model()
    initial = model.initial_state()
    names = [name for name, _ in model.actions(initial)]
    assert "read[0]" in names and "write[1]" in names
    assert not any(name.startswith("llc_evict") for name in names)
    after_write = model.write(initial, 0)
    names = [name for name, _ in model.actions(after_write)]
    assert "llc_evict[0]" in names


def test_states_are_hashable_and_comparable():
    model = make_model()
    a = model.write(model.initial_state(), 0)
    b = model.write(model.initial_state(), 0)
    assert a == b
    assert hash(a) == hash(b)
    assert a != model.initial_state()


def test_initial_state_socket_count():
    assert len(AbstractMachineState.initial(4).sockets) == 4
