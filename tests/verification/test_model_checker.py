"""Tests for the explicit-state model checker (the paper's Murphi analogue)."""

import pytest

from repro.verification.model_checker import ModelChecker, check_protocol
from repro.verification.protocol_model import C3DAbstractModel, ProtocolVariant


def test_c3d_passes_for_two_and_three_sockets():
    for sockets in (2, 3):
        result = check_protocol(ProtocolVariant.CLEAN, num_sockets=sockets)
        assert result.passed, result.summary()
        assert result.states_explored > 10
        assert result.transitions_explored > result.states_explored


def test_c3d_full_dir_and_dirty_full_dir_pass():
    assert check_protocol(ProtocolVariant.CLEAN_FULL_DIR, num_sockets=2).passed
    assert check_protocol(ProtocolVariant.DIRTY_FULL_DIR, num_sockets=2).passed


def test_quad_socket_c3d_passes():
    result = check_protocol(ProtocolVariant.CLEAN, num_sockets=4)
    assert result.passed
    assert result.states_explored > 500


def test_broken_protocol_is_caught_with_counterexample():
    result = check_protocol(ProtocolVariant.BROKEN_NO_BROADCAST, num_sockets=2)
    assert not result.passed
    assert result.counterexample is not None
    assert any(v.invariant in ("SWMR", "data-value") for v in result.violations)
    assert "FAIL" in result.summary()


def test_collect_all_violations_mode():
    result = check_protocol(
        ProtocolVariant.BROKEN_NO_BROADCAST, num_sockets=2, stop_at_first_violation=False
    )
    assert len(result.violations) >= 1
    assert result.states_explored >= 2


def test_state_space_limit_raises():
    model = C3DAbstractModel(num_sockets=3, variant=ProtocolVariant.CLEAN)
    checker = ModelChecker(model, max_states=10)
    with pytest.raises(RuntimeError):
        checker.run()


def test_summary_mentions_pass_and_counts():
    result = check_protocol(ProtocolVariant.CLEAN, num_sockets=2)
    text = result.summary()
    assert "PASS" in text
    assert "states" in text
