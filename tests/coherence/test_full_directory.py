"""Protocol tests for the inclusive full-directory design (full-dir)."""

from repro.coherence.directory import DirectoryState
from repro.coherence.messages import ServiceSource

from ..conftest import block_homed_at, read, write


def spill_from_llc(system, socket_id, block):
    """Evict ``block`` from the socket's LLC by filling its set with reads."""
    llc = system.sockets[socket_id].llc
    for i in range(1, llc.associativity + 1):
        read(system, socket_id=socket_id, block=block + i * llc.num_sets)
    assert not llc.contains(block)


def test_full_dir_tracks_dram_cache_in_directory(full_dir_system):
    assert full_dir_system.protocol.tracks_dram_cache_in_directory
    assert not full_dir_system.protocol.clean_dram_cache


def test_dirty_llc_victim_stays_dirty_in_dram_cache_without_writeback(full_dir_system):
    system = full_dir_system
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    writes_before = system.stats.memory_writes_remote
    spill_from_llc(system, socket_id=0, block=block)
    line = system.sockets[0].dram_cache.peek(block)
    assert line is not None and line.dirty
    assert system.stats.memory_writes_remote == writes_before
    # The directory still records socket 0 as the owner (Fig. 4 situation).
    entry = system.directories[1].peek(block)
    assert entry.state is DirectoryState.MODIFIED and entry.owner == 0


def test_remote_read_of_dirty_dram_block_hits_the_pathology(full_dir_system):
    system = full_dir_system
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    latency, source = read(system, socket_id=1, block=block)
    assert source is ServiceSource.REMOTE_DRAM_CACHE
    # The slow remote hit pays the remote DRAM array latency on top of the
    # interconnect hops, making it slower than a plain memory access.
    assert latency > system.config.memory.latency_ns
    assert system.stats.served_remote_dram_cache == 1
    # Afterwards memory is valid again and the entry is Shared.
    entry = system.directories[1].peek(block)
    assert entry.state is DirectoryState.SHARED
    assert system.check_invariants() == []


def test_read_of_clean_remote_copy_served_by_memory(full_dir_system):
    system = full_dir_system
    block = block_homed_at(system, home=0)
    read(system, socket_id=1, block=block)
    _latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.LOCAL_MEMORY


def test_write_sends_directed_invalidations_not_broadcasts(full_dir_system):
    system = full_dir_system
    block = block_homed_at(system, home=0)
    read(system, socket_id=1, block=block)
    write(system, socket_id=0, block=block)
    assert system.stats.broadcasts == 0
    assert system.stats.invalidations_sent >= 1
    assert not system.sockets[1].llc.contains(block)
    assert system.check_invariants() == []


def test_local_dram_hit_needs_no_global_transaction(full_dir_system):
    system = full_dir_system
    block = block_homed_at(system, home=1)
    read(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    lookups_before = system.directories[1].lookups
    _latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.LOCAL_DRAM_CACHE
    assert system.directories[1].lookups == lookups_before


def test_dram_cache_dirty_victim_reaches_memory_and_directory(full_dir_system):
    system = full_dir_system
    dram = system.sockets[0].dram_cache
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    assert dram.peek(block).dirty
    writes_before = system.stats.memory_writes_remote
    # Conflict the dirty line out of the direct-mapped DRAM cache.
    conflicting = block + dram.num_sets
    write(system, socket_id=0, block=conflicting)
    spill_from_llc(system, socket_id=0, block=conflicting)
    assert not dram.contains(block)
    assert system.stats.memory_writes_remote > writes_before
    assert system.check_invariants() == []
