"""Protocol tests for the baseline (no DRAM cache) design."""

import pytest

from repro.coherence.directory import DirectoryState
from repro.coherence.messages import ServiceSource

from ..conftest import block_homed_at, read, write


def test_baseline_sockets_have_no_dram_cache(baseline_system):
    assert all(sock.dram_cache is None for sock in baseline_system.sockets)
    assert not baseline_system.protocol.uses_dram_cache


def test_read_miss_served_by_local_memory_when_home_is_local(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=0)
    latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.LOCAL_MEMORY
    assert system.stats.memory_reads_local == 1
    assert system.stats.memory_reads_remote == 0
    # Local access never touches the interconnect.
    assert system.interconnect.bytes_sent == 0
    assert latency >= system.config.memory.latency_ns


def test_read_miss_to_remote_home_crosses_the_interconnect(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=1)
    latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.REMOTE_MEMORY
    assert system.stats.memory_reads_remote == 1
    assert system.interconnect.bytes_sent > 0
    # Remote access pays at least one round trip plus the memory latency.
    assert latency > system.config.memory.latency_ns + 2 * system.config.interconnect.hop_latency_ns


def test_read_allocates_directory_sharer(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=1)
    read(system, socket_id=0, block=block)
    entry = system.directories[1].peek(block)
    assert entry is not None
    assert entry.state is DirectoryState.SHARED
    assert 0 in entry.sharers


def test_write_sets_directory_modified(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    entry = system.directories[1].peek(block)
    assert entry.state is DirectoryState.MODIFIED
    assert entry.owner == 0


def test_read_of_remotely_modified_block_is_forwarded(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=0)
    write(system, socket_id=1, block=block)
    latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.REMOTE_LLC
    entry = system.directories[0].peek(block)
    assert entry.state is DirectoryState.SHARED
    assert entry.sharers == {0, 1}
    # The forward wrote the dirty data through to memory.
    assert system.stats.memory_writes_local + system.stats.memory_writes_remote >= 1
    assert system.stats.downgrades == 1


def test_write_invalidates_remote_sharers(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=0)
    read(system, socket_id=1, block=block)
    assert system.sockets[1].llc.contains(block)
    write(system, socket_id=0, block=block)
    assert not system.sockets[1].llc.contains(block)
    assert system.stats.invalidations_sent >= 1
    assert system.check_invariants() == []


def test_write_to_remotely_modified_block_changes_owner(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=0)
    write(system, socket_id=1, block=block)
    write(system, socket_id=0, block=block)
    entry = system.directories[0].peek(block)
    assert entry.state is DirectoryState.MODIFIED and entry.owner == 0
    assert not system.sockets[1].llc.contains(block)
    assert system.check_invariants() == []


def test_upgrade_from_shared_does_not_read_memory(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=0)
    read(system, socket_id=0, block=block)
    reads_before = system.stats.memory_reads
    write(system, socket_id=0, block=block)
    assert system.stats.memory_reads == reads_before
    assert system.stats.upgrades == 1


def test_dirty_eviction_writes_back_and_untracks(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    writes_before = system.stats.memory_writes_remote
    # Force the dirty block out of socket 0's tiny LLC by filling its set.
    llc = system.sockets[0].llc
    conflicting = [block + i * llc.num_sets for i in range(1, llc.associativity + 1)]
    for other in conflicting:
        read(system, socket_id=0, block=other)
    assert not llc.contains(block)
    assert system.stats.memory_writes_remote > writes_before
    assert system.directories[1].peek(block) is None


def test_l1_hit_has_no_global_side_effects(baseline_system):
    system = baseline_system
    block = block_homed_at(system, home=0)
    read(system, socket_id=0, block=block)
    lookups_before = system.stats.directory_lookups
    latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.L1
    assert latency == pytest.approx(system.config.l1.latency_ns)
    assert system.stats.directory_lookups == lookups_before
