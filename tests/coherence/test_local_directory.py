"""Tests for the intra-socket (local) directory."""

from repro.coherence.local_directory import LocalDirectory


def test_record_fill_and_sharers():
    ld = LocalDirectory()
    ld.record_fill(5, core=0)
    ld.record_fill(5, core=1)
    assert ld.sharers_of(5) == {0, 1}
    assert ld.owner_of(5) is None


def test_modified_fill_sets_owner():
    ld = LocalDirectory()
    ld.record_fill(5, core=2, modified=True)
    assert ld.owner_of(5) == 2
    ld.record_fill(5, core=2, modified=False)
    assert ld.owner_of(5) is None


def test_record_write_returns_peers_to_invalidate():
    ld = LocalDirectory()
    ld.record_fill(5, core=0)
    ld.record_fill(5, core=1)
    peers = ld.record_write(5, core=0)
    assert peers == {1}
    assert ld.sharers_of(5) == {0}
    assert ld.owner_of(5) == 0
    assert ld.peer_invalidations == 1


def test_record_eviction_removes_core_and_entry():
    ld = LocalDirectory()
    ld.record_fill(5, core=0)
    ld.record_fill(5, core=1)
    ld.record_eviction(5, core=0)
    assert ld.sharers_of(5) == {1}
    ld.record_eviction(5, core=1)
    assert ld.peek(5) is None
    assert len(ld) == 0


def test_eviction_of_unknown_block_is_noop():
    ld = LocalDirectory()
    ld.record_eviction(9, core=0)
    assert len(ld) == 0


def test_invalidate_block_returns_all_cores():
    ld = LocalDirectory()
    ld.record_fill(7, core=0)
    ld.record_fill(7, core=3)
    cores = ld.invalidate_block(7)
    assert cores == {0, 3}
    assert ld.invalidate_block(7) == set()


def test_lookup_counts():
    ld = LocalDirectory()
    ld.lookup(1)
    ld.record_fill(1, core=0)
    ld.lookup(1)
    assert ld.lookups == 2
