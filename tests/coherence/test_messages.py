"""Tests for the coherence message/result vocabulary and protocol metadata."""

from repro.coherence.messages import (
    CoherenceRequestType,
    EvictionResult,
    MissResult,
    ServiceSource,
)

from ..conftest import tiny_system


def test_request_type_write_flag():
    assert CoherenceRequestType.GETX.is_write
    assert CoherenceRequestType.UPGRADE.is_write
    assert not CoherenceRequestType.GETS.is_write
    assert not CoherenceRequestType.PUTX.is_write


def test_service_source_classification():
    assert ServiceSource.REMOTE_MEMORY.is_off_socket
    assert ServiceSource.REMOTE_DRAM_CACHE.is_off_socket
    assert not ServiceSource.LOCAL_DRAM_CACHE.is_off_socket
    assert ServiceSource.LOCAL_MEMORY.is_memory
    assert ServiceSource.REMOTE_MEMORY.is_memory
    assert not ServiceSource.LLC.is_memory


def test_miss_result_off_socket_property():
    result = MissResult(
        latency=10.0, source=ServiceSource.REMOTE_LLC,
        request_type=CoherenceRequestType.GETS,
    )
    assert result.off_socket
    assert result.invalidations == 0
    assert not result.used_broadcast


def test_eviction_result_defaults():
    result = EvictionResult()
    assert not result.wrote_memory
    assert not result.inserted_in_dram_cache
    assert result.latency == 0.0


def test_protocol_describe_strings():
    assert "no DRAM cache" in tiny_system("baseline").protocol.describe()
    assert "clean DRAM cache" in tiny_system("c3d").protocol.describe()
    assert "dirty DRAM cache" in tiny_system("full-dir").protocol.describe()
