"""Tests for the global directory slice and the storage-cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.directory import (
    DirectoryCostModel,
    DirectoryState,
    GlobalDirectory,
)


def test_untracked_block_is_invalid():
    directory = GlobalDirectory(0)
    assert directory.lookup(5) is None
    assert directory.state_of(5) is DirectoryState.INVALID
    assert directory.lookups == 1


def test_set_modified_and_shared_transitions():
    directory = GlobalDirectory(0)
    entry = directory.set_modified(7, owner=2)
    assert entry.state is DirectoryState.MODIFIED
    assert entry.owner == 2
    entry = directory.set_shared(7, {1, 2})
    assert entry.state is DirectoryState.SHARED
    assert entry.owner is None
    assert entry.sharers == {1, 2}
    assert directory.transitions["I->M"] == 1
    assert directory.transitions["M->S"] == 1


def test_add_sharer_allocates_shared_entry():
    directory = GlobalDirectory(0)
    directory.add_sharer(3, 1)
    directory.add_sharer(3, 2)
    entry = directory.peek(3)
    assert entry.state is DirectoryState.SHARED
    assert entry.sharers == {1, 2}


def test_add_sharer_on_modified_entry_rejected():
    directory = GlobalDirectory(0)
    directory.set_modified(3, owner=0)
    with pytest.raises(ValueError):
        directory.add_sharer(3, 1)


def test_set_shared_requires_sharers():
    directory = GlobalDirectory(0)
    with pytest.raises(ValueError):
        directory.set_shared(3, set())


def test_remove_sharer_deallocates_when_empty():
    directory = GlobalDirectory(0)
    directory.set_shared(3, {1, 2})
    directory.remove_sharer(3, 1)
    assert directory.peek(3).sharers == {2}
    directory.remove_sharer(3, 2)
    assert directory.peek(3) is None
    assert directory.deallocations == 1


def test_invalidate_untracked_is_noop():
    directory = GlobalDirectory(0)
    directory.invalidate(9)
    assert directory.deallocations == 0


def test_peak_entries_tracked():
    directory = GlobalDirectory(0)
    for block in range(10):
        directory.add_sharer(block, 0)
    for block in range(10):
        directory.invalidate(block)
    assert directory.peak_entries == 10
    assert len(directory) == 0


def test_cost_model_matches_paper_section_iii_b():
    model = DirectoryCostModel(num_sockets=4, provisioning=2.0)
    assert model.storage_megabytes(256 * 2**20) == pytest.approx(32.0, rel=0.01)
    assert model.storage_megabytes(1 << 30) == pytest.approx(128.0, rel=0.01)
    minimal = DirectoryCostModel(num_sockets=4, provisioning=1.0)
    assert minimal.storage_megabytes(256 * 2**20) == pytest.approx(16.0, rel=0.01)


def test_cost_model_entry_bits_scale_with_sockets():
    small = DirectoryCostModel(num_sockets=2)
    large = DirectoryCostModel(num_sockets=8)
    assert large.entry_bits() == small.entry_bits() + 6


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 3), st.sampled_from(["M", "S", "I"])),
                max_size=100))
def test_directory_entries_always_well_formed(ops):
    directory = GlobalDirectory(0)
    for block, socket, action in ops:
        if action == "M":
            directory.set_modified(block, socket)
        elif action == "S":
            directory.set_shared(block, {socket})
        else:
            directory.invalidate(block)
    for entry in directory.entries():
        assert entry.state in (DirectoryState.MODIFIED, DirectoryState.SHARED)
        if entry.state is DirectoryState.MODIFIED:
            assert entry.owner is not None
        assert entry.sharers
