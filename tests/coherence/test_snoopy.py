"""Protocol tests for the snoopy coherent DRAM cache design."""

from repro.coherence.messages import ServiceSource

from ..conftest import block_homed_at, read, write


def test_snoopy_uses_dirty_dram_caches(snoopy_system):
    assert snoopy_system.protocol.uses_dram_cache
    assert not snoopy_system.protocol.clean_dram_cache
    assert all(not sock.dram_cache.clean for sock in snoopy_system.sockets)


def test_local_dram_cache_hit_requires_no_snoop(snoopy_system):
    system = snoopy_system
    block = block_homed_at(system, home=0)
    system.sockets[0].dram_cache.insert(block)
    bytes_before = system.interconnect.bytes_sent
    _latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.LOCAL_DRAM_CACHE
    assert system.interconnect.bytes_sent == bytes_before


def test_miss_snoops_every_other_socket(snoopy_system):
    system = snoopy_system
    block = block_homed_at(system, home=0)
    read(system, socket_id=0, block=block)
    from repro.interconnect.packet import MessageClass

    assert system.interconnect.messages_by_class[MessageClass.SNOOP] == system.num_sockets - 1


def test_snoop_pays_remote_dram_probe_even_when_absent(snoopy_system):
    """The snoop filter cannot cover the DRAM cache, so the remote DRAM array
    latency lands on the critical path of every snooped miss."""
    system = snoopy_system
    block = block_homed_at(system, home=0)
    latency, _ = read(system, socket_id=0, block=block)
    config = system.config
    minimum = (
        2 * config.interconnect.hop_latency_ns      # snoop out + response back
        + config.dram_cache.latency_ns               # remote DRAM array probe
    )
    assert latency >= minimum


def test_dirty_remote_dram_copy_is_forwarded(snoopy_system):
    system = snoopy_system
    block = block_homed_at(system, home=0)
    # Socket 1 acquires the block modified, then spills it into its DRAM cache.
    write(system, socket_id=1, block=block)
    llc = system.sockets[1].llc
    for i in range(1, llc.associativity + 1):
        read(system, socket_id=1, block=block + i * llc.num_sets)
    line = system.sockets[1].dram_cache.peek(block)
    assert line is not None and line.dirty
    _latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.REMOTE_DRAM_CACHE
    assert system.stats.served_remote_dram_cache == 1


def test_write_invalidates_all_remote_copies(snoopy_system):
    system = snoopy_system
    block = block_homed_at(system, home=0)
    read(system, socket_id=1, block=block)
    system.sockets[1].dram_cache.insert(block)
    write(system, socket_id=0, block=block)
    assert not system.sockets[1].llc.contains(block)
    assert not system.sockets[1].dram_cache.contains(block)
    assert system.stats.broadcasts >= 1
    assert system.check_invariants() == []


def test_llc_victims_are_absorbed_dirty(snoopy_system):
    system = snoopy_system
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    writes_before = system.stats.memory_writes_local + system.stats.memory_writes_remote
    llc = system.sockets[0].llc
    for i in range(1, llc.associativity + 1):
        read(system, socket_id=0, block=block + i * llc.num_sets)
    line = system.sockets[0].dram_cache.peek(block)
    assert line is not None and line.dirty
    # No memory write-back happened for the absorbed victim.
    assert (
        system.stats.memory_writes_local + system.stats.memory_writes_remote
        == writes_before
    )
