"""Tests for the shared protocol machinery in GlobalCoherenceProtocol."""

import pytest

from repro.coherence.directory import DirectoryState

from ..conftest import block_homed_at, tiny_system


def test_home_of_and_directory_for():
    system = tiny_system("c3d")
    protocol = system.protocol
    block0 = block_homed_at(system, home=0)
    block1 = block_homed_at(system, home=1)
    assert protocol.home_of(block0) == 0
    assert protocol.home_of(block1) == 1
    assert protocol.directory_for(block1) is system.directories[1]
    assert protocol.num_sockets == 2
    assert protocol.socket(1) is system.sockets[1]


def test_memory_read_and_write_update_local_remote_counters():
    system = tiny_system("c3d")
    protocol = system.protocol
    block = block_homed_at(system, home=1)
    protocol._memory_read(0.0, home=1, block=block, requester=1)
    protocol._memory_read(0.0, home=1, block=block, requester=0)
    assert system.stats.memory_reads_local == 1
    assert system.stats.memory_reads_remote == 1
    protocol._memory_write(0.0, home=1, block=block, requester=0)
    assert system.stats.memory_writes_remote == 1
    assert system.stats.writebacks == 1
    # The remote write shipped a data packet across the interconnect.
    assert system.interconnect.data_bytes() > 0


def test_probe_local_dram_cache_counts_hits_and_misses():
    system = tiny_system("c3d")
    protocol = system.protocol
    block = block_homed_at(system, home=0)
    hit, latency, dirty = protocol._probe_local_dram_cache(0.0, 0, block)
    assert not hit and not dirty
    assert latency >= system.config.dram_cache.predictor_latency_ns
    system.sockets[0].dram_cache.insert(block)
    hit, latency, _ = protocol._probe_local_dram_cache(0.0, 0, block)
    assert hit
    assert latency == pytest.approx(
        system.config.dram_cache.predictor_latency_ns + system.config.dram_cache.latency_ns
    )
    assert system.stats.dram_cache_hits == 1
    assert system.stats.dram_cache_misses == 1


def test_probe_local_dram_cache_on_baseline_is_free():
    system = tiny_system("baseline")
    hit, latency, dirty = system.protocol._probe_local_dram_cache(0.0, 0, 1234)
    assert (hit, latency, dirty) == (False, 0.0, False)


def test_sockets_with_copy_helpers():
    system = tiny_system("c3d")
    protocol = system.protocol
    block = block_homed_at(system, home=0)
    from repro.caches.block import CacheBlockState

    system.sockets[0].llc.insert(block, CacheBlockState.SHARED)
    system.sockets[1].dram_cache.insert(block)
    assert protocol._sockets_with_onchip_copy(block) == [0]
    assert protocol._sockets_with_any_copy(block) == [0, 1]
    assert protocol._sockets_with_any_copy(block, exclude=0) == [1]


def test_directory_note_read_sharer_degrades_stale_modified_entry():
    system = tiny_system("c3d")
    protocol = system.protocol
    directory = system.directories[0]
    directory.set_modified(7, owner=1)
    protocol._directory_note_read_sharer(directory, 7, requester=0)
    entry = directory.peek(7)
    assert entry.state is DirectoryState.SHARED
    assert entry.sharers == {0, 1}


def test_invalidate_remote_socket_removes_all_copies_and_acks():
    system = tiny_system("c3d")
    protocol = system.protocol
    block = block_homed_at(system, home=0)
    from repro.caches.block import CacheBlockState

    system.sockets[1].llc.insert(block, CacheBlockState.SHARED)
    system.sockets[1].dram_cache.insert(block)
    latency = protocol._invalidate_remote_socket(
        0.0, home=0, target=1, block=block, include_dram_cache=True
    )
    assert latency >= 2 * system.config.interconnect.hop_latency_ns
    assert not system.sockets[1].llc.contains(block)
    assert not system.sockets[1].dram_cache.contains(block)
    assert system.stats.invalidations_sent == 1


def test_register_llc_fill_hook_is_a_noop_by_default():
    system = tiny_system("c3d")
    system.protocol._register_llc_fill(0, 1234, modified=True)  # must not raise
