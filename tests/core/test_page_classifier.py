"""Tests for the TLB/page-table private-shared classifier (section IV-D)."""

from repro.core.page_classifier import PrivateSharedClassifier
from repro.memory.page_table import PageClassification

from ..conftest import block_homed_at, tiny_system, write


PAGE_BYTES = 4096


def test_first_access_marks_page_private():
    classifier = PrivateSharedClassifier()
    classifier.record_access(thread_id=1, addr=0)
    assert classifier.classification_of_block(0) is PageClassification.PRIVATE
    assert classifier.write_is_private(thread_id=1, block=0)


def test_unknown_page_is_treated_as_shared():
    classifier = PrivateSharedClassifier()
    assert not classifier.write_is_private(thread_id=0, block=999)


def test_access_by_second_thread_reclassifies():
    classifier = PrivateSharedClassifier()
    classifier.record_access(thread_id=1, addr=0)
    classifier.record_access(thread_id=2, addr=64)
    assert classifier.classification_of_block(0) is PageClassification.SHARED
    assert not classifier.write_is_private(thread_id=1, block=0)
    assert classifier.stats.reclassifications == 1


def test_write_by_non_owner_is_not_private_even_before_reclassification():
    classifier = PrivateSharedClassifier()
    classifier.record_access(thread_id=1, addr=0)
    assert not classifier.write_is_private(thread_id=2, block=0)


def test_private_page_fraction():
    classifier = PrivateSharedClassifier()
    classifier.record_access(thread_id=0, addr=0)
    classifier.record_access(thread_id=0, addr=PAGE_BYTES)
    classifier.record_access(thread_id=1, addr=PAGE_BYTES)
    assert classifier.private_page_fraction() == 0.5


def test_record_block_access_uses_block_addressing():
    classifier = PrivateSharedClassifier()
    classifier.record_block_access(thread_id=3, block=64)  # second page
    assert classifier.page_table.lookup(1) is not None


def test_c3d_with_filter_elides_broadcasts_for_private_pages():
    system = tiny_system("c3d", broadcast_filter=True)
    assert system.page_classifier is not None
    block = block_homed_at(system, home=0)
    # Thread 0 on socket 0 owns the page privately.
    system.page_classifier.record_access(thread_id=0, addr=block * 64)
    broadcasts_before = system.stats.broadcasts
    write(system, socket_id=0, block=block, core=0)
    assert system.stats.broadcasts == broadcasts_before
    assert system.stats.broadcasts_elided == 1


def test_c3d_with_filter_still_broadcasts_for_shared_pages():
    system = tiny_system("c3d", broadcast_filter=True)
    block = block_homed_at(system, home=0)
    system.page_classifier.record_access(thread_id=0, addr=block * 64)
    system.page_classifier.record_access(thread_id=3, addr=block * 64)
    write(system, socket_id=0, block=block, core=0)
    assert system.stats.broadcasts == 1
    assert system.stats.broadcasts_elided == 0
