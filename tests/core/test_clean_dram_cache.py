"""Tests for the clean write-through policy objects."""

from repro.caches.dram_cache import DRAMCache
from repro.core.clean_dram_cache import CleanWriteThroughPolicy, DirtyVictimCachePolicy


def test_clean_policy_dirty_victim():
    policy = CleanWriteThroughPolicy()
    decision = policy.on_llc_eviction(dirty=True)
    assert decision.insert_in_dram_cache
    assert not decision.insert_dirty
    assert decision.write_through_to_memory


def test_clean_policy_clean_victim():
    policy = CleanWriteThroughPolicy()
    decision = policy.on_llc_eviction(dirty=False)
    assert decision.insert_in_dram_cache
    assert not decision.insert_dirty
    assert not decision.write_through_to_memory


def test_clean_policy_without_dram_cache_degenerates_to_writeback():
    policy = CleanWriteThroughPolicy()
    decision = policy.on_llc_eviction(dirty=True, has_dram_cache=False)
    assert not decision.insert_in_dram_cache
    assert decision.write_through_to_memory


def test_dirty_policy_absorbs_victims():
    policy = DirtyVictimCachePolicy()
    decision = policy.on_llc_eviction(dirty=True)
    assert decision.insert_in_dram_cache
    assert decision.insert_dirty
    assert not decision.write_through_to_memory


def test_policy_flags():
    assert CleanWriteThroughPolicy.keeps_cache_clean
    assert not DirtyVictimCachePolicy.keeps_cache_clean


def test_validate_cache_checks_clean_invariant():
    clean_cache = DRAMCache(1024, clean=True)
    clean_cache.insert(1, dirty=True)
    assert CleanWriteThroughPolicy.validate_cache(clean_cache)
    dirty_cache = DRAMCache(1024, clean=False)
    dirty_cache.insert(1, dirty=True)
    assert not CleanWriteThroughPolicy.validate_cache(dirty_cache)
