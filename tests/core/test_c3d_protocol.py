"""Protocol tests for C3D (clean DRAM caches + non-inclusive directory)."""

import pytest

from repro.coherence.directory import DirectoryState
from repro.coherence.messages import ServiceSource
from repro.interconnect.packet import MessageClass

from ..conftest import block_homed_at, read, tiny_system, write


def spill_from_llc(system, socket_id, block):
    """Evict ``block`` from the socket's LLC by filling its set with reads."""
    llc = system.sockets[socket_id].llc
    for i in range(1, llc.associativity + 1):
        read(system, socket_id=socket_id, block=block + i * llc.num_sets)
    assert not llc.contains(block)


def test_c3d_properties(c3d_system):
    assert c3d_system.protocol.clean_dram_cache
    assert not c3d_system.protocol.tracks_dram_cache_in_directory
    assert all(sock.dram_cache.clean for sock in c3d_system.sockets)


def test_read_in_invalid_state_is_not_tracked(c3d_system):
    """GetS to an untracked block is served by memory and stays untracked (Fig. 5)."""
    system = c3d_system
    block = block_homed_at(system, home=1)
    _latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.REMOTE_MEMORY
    assert system.directories[1].peek(block) is None


def test_dirty_llc_eviction_writes_through_and_keeps_clean_copy(c3d_system):
    system = c3d_system
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    assert system.directories[1].peek(block).state is DirectoryState.MODIFIED
    writes_before = system.stats.memory_writes_remote
    spill_from_llc(system, socket_id=0, block=block)
    # The data reached memory (write-through, PutX) ...
    assert system.stats.memory_writes_remote > writes_before
    assert system.stats.write_throughs >= 1
    # ... a clean copy is retained in the local DRAM cache ...
    line = system.sockets[0].dram_cache.peek(block)
    assert line is not None and not line.dirty
    # ... and the directory transitions Modified -> Invalid (untracked).
    assert system.directories[1].peek(block) is None


def test_remote_read_after_writethrough_avoids_remote_dram_cache(c3d_system):
    """The defining property: no read is ever served by a remote DRAM cache."""
    system = c3d_system
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    _latency, source = read(system, socket_id=1, block=block)
    assert source in (ServiceSource.LOCAL_MEMORY, ServiceSource.REMOTE_MEMORY)
    assert system.stats.served_remote_dram_cache == 0
    assert system.check_invariants() == []


def test_local_dram_cache_hit_is_fast_and_silent(c3d_system):
    system = c3d_system
    block = block_homed_at(system, home=1)
    read(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    bytes_before = system.interconnect.bytes_sent
    latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.LOCAL_DRAM_CACHE
    assert system.interconnect.bytes_sent == bytes_before
    config = system.config
    # On an LLC miss the tag check overlaps with the local-directory lookup
    # (only the latter is charged), then the miss predictor and the DRAM
    # array are accessed.
    expected = (
        config.l1.latency_ns
        + config.directory.local_latency_ns
        + config.dram_cache.predictor_latency_ns
        + config.dram_cache.latency_ns
    )
    assert latency == pytest.approx(expected)


def test_read_of_remote_modified_block_forwarded_from_owner_llc(c3d_system):
    system = c3d_system
    block = block_homed_at(system, home=0)
    write(system, socket_id=1, block=block)
    _latency, source = read(system, socket_id=0, block=block)
    assert source is ServiceSource.REMOTE_LLC
    entry = system.directories[0].peek(block)
    assert entry.state is DirectoryState.SHARED
    assert entry.sharers == {0, 1}
    assert system.check_invariants() == []


def test_write_to_untracked_block_broadcasts_invalidations(c3d_system):
    system = c3d_system
    block = block_homed_at(system, home=0)
    # Socket 1 holds an untracked copy in LLC and DRAM cache.
    read(system, socket_id=1, block=block)
    system.sockets[1].dram_cache.insert(block)
    broadcasts_before = system.stats.broadcasts
    write(system, socket_id=0, block=block)
    assert system.stats.broadcasts == broadcasts_before + 1
    assert system.interconnect.messages_by_class[MessageClass.BROADCAST_INVALIDATION] >= 1
    # Every remote copy (LLC and DRAM cache) is gone.
    assert not system.sockets[1].llc.contains(block)
    assert not system.sockets[1].dram_cache.contains(block)
    assert system.directories[0].peek(block).state is DirectoryState.MODIFIED
    assert system.check_invariants() == []


def test_write_to_shared_tracked_block_uses_directed_invalidations(c3d_system):
    system = c3d_system
    block = block_homed_at(system, home=0)
    # Make the block tracked in Shared state: socket 1 writes then socket 0 reads
    # (M -> S transition tracks both sharers precisely).
    write(system, socket_id=1, block=block)
    read(system, socket_id=0, block=block)
    broadcasts_before = system.stats.broadcasts
    write(system, socket_id=0, block=block)
    assert system.stats.broadcasts == broadcasts_before  # no broadcast needed
    assert not system.sockets[1].llc.contains(block)
    assert system.check_invariants() == []


def test_clean_dram_cache_invariant_holds_after_mixed_traffic(c3d_system):
    system = c3d_system
    blocks = [block_homed_at(system, home=h, index=i) for h in range(2) for i in range(6)]
    for i, block in enumerate(blocks):
        write(system, socket_id=i % 2, block=block)
        read(system, socket_id=(i + 1) % 2, block=block)
        spill_from_llc(system, socket_id=i % 2, block=block)
    assert system.check_invariants() == []
    for sock in system.sockets:
        for resident in sock.dram_cache.resident_blocks():
            assert not sock.dram_cache.peek(resident).dirty


def test_write_data_can_come_from_local_dram_cache(c3d_system):
    system = c3d_system
    block = block_homed_at(system, home=1)
    read(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    reads_before = system.stats.memory_reads
    _latency, source = write(system, socket_id=0, block=block)
    assert source is ServiceSource.LOCAL_DRAM_CACHE
    assert system.stats.memory_reads == reads_before


def test_directory_latency_charged_on_global_transactions(c3d_system):
    system = c3d_system
    block = block_homed_at(system, home=0)
    latency, _ = read(system, socket_id=0, block=block)
    config = system.config
    assert latency >= config.memory.latency_ns + config.directory.latency_ns


def test_stale_local_dram_copy_allowed_while_llc_modified():
    """The paper allows a DRAM cache to hold a stale copy of a block that is
    Modified higher up in the same socket."""
    system = tiny_system("c3d")
    block = block_homed_at(system, home=0)
    read(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    assert system.sockets[0].dram_cache.contains(block)
    write(system, socket_id=0, block=block)
    # The local DRAM cache may still hold the (now stale) copy; correctness is
    # preserved because the directory tracks the on-chip Modified copy.
    assert system.directories[0].peek(block).state is DirectoryState.MODIFIED
    assert system.check_invariants() == []
