"""Protocol tests for the idealised C3D + full directory design."""

from repro.coherence.directory import DirectoryState
from repro.coherence.messages import ServiceSource

from ..conftest import block_homed_at, read, tiny_system, write


def spill_from_llc(system, socket_id, block):
    llc = system.sockets[socket_id].llc
    for i in range(1, llc.associativity + 1):
        read(system, socket_id=socket_id, block=block + i * llc.num_sets)
    assert not llc.contains(block)


def make_system():
    return tiny_system("c3d-full-dir")


def test_properties():
    system = make_system()
    assert system.protocol.clean_dram_cache
    assert system.protocol.tracks_dram_cache_in_directory


def test_never_broadcasts():
    system = make_system()
    block = block_homed_at(system, home=0)
    read(system, socket_id=1, block=block)
    system.sockets[1].dram_cache.insert(block)
    write(system, socket_id=0, block=block)
    assert system.stats.broadcasts == 0
    # Precise invalidations still removed the remote copies.
    assert not system.sockets[1].llc.contains(block)
    assert not system.sockets[1].dram_cache.contains(block)
    assert system.check_invariants() == []


def test_reads_are_tracked_even_when_served_by_memory():
    system = make_system()
    block = block_homed_at(system, home=1)
    read(system, socket_id=0, block=block)
    entry = system.directories[1].peek(block)
    assert entry is not None and 0 in entry.sharers


def test_writeback_transitions_modified_to_shared():
    system = make_system()
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    entry = system.directories[1].peek(block)
    assert entry is not None
    assert entry.state is DirectoryState.SHARED
    assert entry.sharers == {0}
    # The clean copy lives in the DRAM cache and memory has been updated.
    assert system.sockets[0].dram_cache.contains(block)
    assert system.stats.write_throughs >= 1


def test_no_remote_dram_cache_reads():
    system = make_system()
    block = block_homed_at(system, home=1)
    write(system, socket_id=0, block=block)
    spill_from_llc(system, socket_id=0, block=block)
    _latency, source = read(system, socket_id=1, block=block)
    assert source in (ServiceSource.LOCAL_MEMORY, ServiceSource.REMOTE_MEMORY)
    assert system.stats.served_remote_dram_cache == 0


def test_matches_c3d_on_read_path_latency():
    """c3d and c3d-full-dir should serve plain read misses identically."""
    block_index = 3
    latencies = {}
    for protocol in ("c3d", "c3d-full-dir"):
        system = tiny_system(protocol)
        block = block_homed_at(system, home=1, index=block_index)
        latency, _ = read(system, socket_id=0, block=block)
        latencies[protocol] = latency
    assert latencies["c3d"] == latencies["c3d-full-dir"]
