"""HTTP round-trip tests for the `repro serve` daemon.

Covers all four endpoints (healthz, submit, status, NDJSON results), the
acceptance bit: a campaign submitted over HTTP with >= 2 concurrent point
workers merges bit-identically to a serial `repro campaign run` -- and a
resubmission of the same campaign that is served 100% from cache.
"""

import io
import json
import threading
import urllib.request

import pytest

from repro.experiments.campaign import (
    CampaignSpec,
    merged_point_stats,
    run_campaign,
)
from repro.experiments.runner import sweep_point_key
from repro.service.client import ServeClient, ServiceError
from repro.service.server import serve
from repro.stats.store import ResultsStore

SPEC_PAYLOAD = {
    "name": "http-round-trip",
    "settings": {
        "scale": 4096,
        "accesses_per_thread": 150,
        "warmup_accesses_per_thread": 50,
        "num_sockets": 2,
        "cores_per_socket": 1,
    },
    "sweeps": [
        {
            "protocols": ["baseline", "c3d"],
            "workloads": ["facesim", "streamcluster"],
            "topologies": [{"sockets": 2, "cores_per_socket": 1}],
        }
    ],
}


@pytest.fixture()
def daemon(tmp_path):
    """A live daemon on an ephemeral port, >= 2 point workers per campaign."""
    server = serve(tmp_path / "served", workers=2, point_jobs=2, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServeClient(f"http://{host}:{port}"), tmp_path / "served"
    finally:
        server.shutdown()
        server.manager.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_healthz(daemon):
    client, store_path = daemon
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["store"] == str(store_path)
    assert set(health["jobs"]) == {"queued", "running", "done", "failed"}


def test_submit_rejects_invalid_spec(daemon):
    client, _ = daemon
    with pytest.raises(ServiceError) as exc:
        client.submit({"name": "broken", "sweeps": [], "figures": []})
    assert exc.value.status == 400
    assert "nothing to run" in str(exc.value)


def test_unknown_campaign_and_endpoint_404(daemon):
    client, _ = daemon
    with pytest.raises(ServiceError) as exc:
        client.status("deadbeef00000000")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client._json("/nonsense")
    assert exc.value.status == 404


def test_http_campaign_matches_serial_run_and_resubmit_is_cached(
    daemon, tmp_path
):
    client, store_path = daemon
    spec = CampaignSpec.from_dict(SPEC_PAYLOAD)

    # The reference: the same campaign run serially in-process.
    serial_store = ResultsStore(tmp_path / "serial")
    run_campaign(spec, serial_store, stream=io.StringIO())
    serial_merged = merged_point_stats(spec, serial_store)

    # Submit over HTTP; >= 2 concurrent point workers on the server side.
    job = client.submit(SPEC_PAYLOAD)
    assert job["points_total"] == 4 and job["created"]
    status = client.wait(job["id"], timeout=300)
    assert status["state"] == "done"
    assert status["points_done"] == 4 and status["points_pending"] == 0
    assert status["points_quarantined"] == 0
    assert (status["executed"], status["cached"]) == (4, 0)

    # NDJSON results: every point, in deterministic expansion order,
    # bit-identical to the serially stored records.
    records = list(client.results(job["id"]))
    assert len(records) == 4
    assert [r["key"] for r in records] == [
        sweep_point_key(point, spec.engine) for point in spec.expand()
    ]
    for record in records:
        reference = serial_store.get(record["key"]).to_json_dict()
        # wall_clock_s is timing telemetry, the only nondeterministic field.
        reference.pop("wall_clock_s"), record.pop("wall_clock_s")
        assert reference == record

    # Merged stats from the server's store: bit-identical to serial.
    served_merged = merged_point_stats(spec, ResultsStore(store_path))
    assert served_merged.to_json_dict() == serial_merged.to_json_dict()
    assert ResultsStore(store_path).verify().clean

    # Resubmit: same content-addressed id, re-runs 100% from cache.
    again = client.submit(SPEC_PAYLOAD)
    assert again["id"] == job["id"] and not again["created"]
    final = client.wait(job["id"], timeout=300)
    assert final["state"] == "done"
    assert (final["executed"], final["cached"]) == (0, 4)


def test_results_endpoint_streams_ndjson_content_type(daemon):
    client, _ = daemon
    job = client.submit(SPEC_PAYLOAD)
    client.wait(job["id"], timeout=300)
    request = urllib.request.Request(
        f"{client.base_url}/campaigns/{job['id']}/results"
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        lines = [line for line in response.read().decode().split("\n") if line]
    assert len(lines) == 4
    for line in lines:
        json.loads(line)
