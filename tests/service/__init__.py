"""Serving-layer tests."""
