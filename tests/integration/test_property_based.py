"""Property-based integration tests: random access interleavings never break
coherence invariants, for any of the five designs.

These act as a lightweight fuzzer over the concrete (timing) implementation,
complementing the exhaustive model checking of the abstract protocol.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.system.numa_system import NumaSystem

from ..conftest import tiny_config

#: A small pool of blocks spread over both sockets' memory (two pages each).
def _block_pool(system):
    blocks = []
    blocks_per_page = system.layout.blocks_per_page()
    for page in range(4):
        blocks.extend(page * blocks_per_page + offset for offset in (0, 1))
    return blocks


access_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),   # socket
        st.integers(min_value=0, max_value=1),   # core within socket
        st.integers(min_value=0, max_value=7),   # block index in the pool
        st.booleans(),                           # is_write
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(protocol=st.sampled_from(["baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir"]),
       sequence=access_sequences)
def test_random_interleavings_preserve_invariants(protocol, sequence):
    system = NumaSystem(tiny_config(protocol))
    pool = _block_pool(system)
    now = 0.0
    for socket_id, core, block_index, is_write in sequence:
        block = pool[block_index]
        latency, _source = system.sockets[socket_id].access(
            now, core, block, is_write=is_write, thread_id=socket_id * 2 + core
        )
        assert latency >= 0.0
        now += latency
    assert system.check_invariants() == []


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(sequence=access_sequences)
def test_c3d_dram_caches_stay_clean_under_random_traffic(sequence):
    system = NumaSystem(tiny_config("c3d"))
    pool = _block_pool(system)
    for socket_id, core, block_index, is_write in sequence:
        system.sockets[socket_id].access(
            0.0, core, pool[block_index], is_write=is_write, thread_id=socket_id * 2 + core
        )
    for sock in system.sockets:
        for block in sock.dram_cache.resident_blocks():
            assert not sock.dram_cache.peek(block).dirty


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(sequence=access_sequences)
def test_directory_modified_entries_always_have_an_owner_copy(sequence):
    system = NumaSystem(tiny_config("c3d"))
    pool = _block_pool(system)
    for socket_id, core, block_index, is_write in sequence:
        system.sockets[socket_id].access(
            0.0, core, pool[block_index], is_write=is_write, thread_id=socket_id * 2 + core
        )
        # Invariant must hold after *every* transaction, not just at the end.
        for directory in system.directories:
            for entry in directory.entries():
                if entry.state.value == "M":
                    assert entry.owner is not None
                    assert system.sockets[entry.owner].llc.contains(entry.block)
