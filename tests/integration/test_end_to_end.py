"""End-to-end tests exercising the public API the examples/README rely on."""

import pytest

import repro
from repro import (
    EVALUATED_WORKLOADS,
    NumaSystem,
    SimulationResult,
    Simulator,
    SystemConfig,
    amat_breakdown,
    make_workload,
)


def test_public_api_quickstart_flow():
    config = SystemConfig.quad_socket(protocol="c3d").scaled(4096)
    system = NumaSystem(config)
    workload = make_workload("streamcluster", scale=4096, accesses_per_thread=100,
                             num_threads=config.total_cores)
    result = Simulator(system, workload).run()
    assert isinstance(result, SimulationResult)
    assert result.total_time_ns > 0
    assert result.amat_ns > 0
    breakdown = amat_breakdown(result.stats)
    assert breakdown.amat_ns == pytest.approx(result.amat_ns)


def test_version_and_exports():
    assert repro.__version__
    assert "c3d" in repro.PROTOCOL_NAMES
    assert len(EVALUATED_WORKLOADS) == 9
    assert set(repro.PROTOCOL_REGISTRY) == set(repro.PROTOCOL_NAMES)


def test_baseline_vs_c3d_speedup_positive_on_cache_friendly_workload():
    """The headline claim at miniature scale: C3D beats the baseline when the
    working set fits in the DRAM caches."""
    times = {}
    for protocol in ("baseline", "c3d"):
        config = SystemConfig.quad_socket(protocol=protocol).scaled(4096)
        system = NumaSystem(config)
        workload = make_workload("streamcluster", scale=4096, accesses_per_thread=400,
                                 num_threads=config.total_cores)
        result = Simulator(system, workload).run(
            warmup_accesses_per_core=100, prewarm=True
        )
        times[protocol] = result.total_time_ns
        assert system.check_invariants() == []
    assert times["baseline"] / times["c3d"] > 1.02


def test_remote_fraction_matches_table_one_direction():
    """Under first-touch, most memory accesses of a shared-data workload are
    remote (Table I's qualitative claim)."""
    config = SystemConfig.quad_socket(protocol="baseline").scaled(4096)
    system = NumaSystem(config)
    workload = make_workload("facesim", scale=4096, accesses_per_thread=300,
                             num_threads=config.total_cores)
    result = Simulator(system, workload).run()
    assert result.stats.remote_memory_fraction() > 0.5
