"""Cross-protocol integration tests.

These tests run the same synthetic workload through every design and check
the relationships the paper's argument rests on, at a scale small enough for
the unit-test suite.
"""

import pytest

from repro.system.numa_system import PROTOCOL_REGISTRY, NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.registry import make_workload

from ..conftest import tiny_config


def run_protocol(protocol, workload_name="streamcluster", accesses=400, **config_kwargs):
    system = NumaSystem(tiny_config(protocol, **config_kwargs))
    workload = make_workload(
        workload_name, scale=4096, accesses_per_thread=accesses,
        num_threads=system.num_cores,
    )
    simulator = Simulator(system, workload)
    result = simulator.run(prewarm=True)
    return system, result


@pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY))
def test_every_protocol_preserves_invariants(protocol):
    system, result = run_protocol(protocol)
    assert result.accesses_executed > 0
    assert system.check_invariants() == []


@pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY))
def test_every_protocol_finishes_with_plausible_amat(protocol):
    _system, result = run_protocol(protocol)
    amat = result.stats.amat_ns()
    # AMAT must lie between an L1 hit and a few memory round trips.
    assert 0.3 < amat < 500.0


def test_clean_designs_never_serve_reads_from_remote_dram_caches():
    for protocol in ("c3d", "c3d-full-dir"):
        _system, result = run_protocol(protocol)
        assert result.stats.served_remote_dram_cache == 0


def test_dirty_designs_do_use_remote_dram_caches_under_write_sharing():
    _system, result = run_protocol("full-dir", workload_name="fluidanimate", accesses=800)
    assert result.stats.served_remote_dram_cache > 0


def test_dram_cache_designs_reduce_memory_reads_vs_baseline():
    _base_sys, base = run_protocol("baseline")
    for protocol in ("c3d", "full-dir", "snoopy"):
        _sys, result = run_protocol(protocol)
        assert result.stats.memory_reads < base.stats.memory_reads


def test_c3d_write_traffic_matches_baseline_within_tolerance():
    """C3D's caches are write-through, so memory writes stay close to baseline."""
    _base_sys, base = run_protocol("baseline")
    _c3d_sys, c3d = run_protocol("c3d")
    assert c3d.stats.memory_writes == pytest.approx(base.stats.memory_writes, rel=0.35)


def test_c3d_full_dir_never_broadcasts_but_c3d_does():
    _c3d_sys, c3d = run_protocol("c3d", workload_name="facesim", accesses=600)
    _ideal_sys, ideal = run_protocol("c3d-full-dir", workload_name="facesim", accesses=600)
    assert c3d.stats.broadcasts > 0
    assert ideal.stats.broadcasts == 0


def test_c3d_inter_socket_traffic_close_to_ideal_directory():
    """Paper: C3D adds only ~5% traffic over an idealised full directory."""
    _c3d_sys, c3d = run_protocol("c3d", workload_name="facesim", accesses=600)
    _ideal_sys, ideal = run_protocol("c3d-full-dir", workload_name="facesim", accesses=600)
    assert c3d.inter_socket_bytes < 2.0 * ideal.inter_socket_bytes


def test_snoopy_generates_most_inter_socket_traffic():
    traffic = {}
    for protocol in ("baseline", "snoopy", "c3d"):
        _sys, result = run_protocol(protocol, workload_name="facesim", accesses=600)
        traffic[protocol] = result.inter_socket_bytes
    assert traffic["snoopy"] > traffic["c3d"]
    assert traffic["snoopy"] > traffic["baseline"]


def test_four_socket_ring_machine_runs_all_protocols():
    for protocol in sorted(PROTOCOL_REGISTRY):
        system, result = run_protocol(
            protocol, accesses=200, num_sockets=4, cores_per_socket=1, topology="ring",
        )
        assert system.check_invariants() == []
        assert len(result.stats.core_finish_ns) == 4
