"""Tests for address/block/page arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import DEFAULT_LAYOUT, AddressLayout


def test_default_layout_matches_table_ii():
    assert DEFAULT_LAYOUT.block_size == 64
    assert DEFAULT_LAYOUT.page_size == 4096
    assert DEFAULT_LAYOUT.blocks_per_page() == 64


def test_block_of_and_base():
    layout = AddressLayout()
    assert layout.block_of(0) == 0
    assert layout.block_of(63) == 0
    assert layout.block_of(64) == 1
    assert layout.block_base(130) == 128
    assert layout.block_offset(130) == 2


def test_page_of_and_base():
    layout = AddressLayout()
    assert layout.page_of(4095) == 0
    assert layout.page_of(4096) == 1
    assert layout.page_base(5000) == 4096


def test_page_of_block():
    layout = AddressLayout()
    assert layout.page_of_block(0) == 0
    assert layout.page_of_block(63) == 0
    assert layout.page_of_block(64) == 1


def test_block_to_addr_round_trip():
    layout = AddressLayout()
    for block in (0, 1, 17, 1000):
        assert layout.block_of(layout.block_to_addr(block)) == block


def test_same_block_and_page():
    layout = AddressLayout()
    assert layout.same_block(0, 63)
    assert not layout.same_block(63, 64)
    assert layout.same_page(0, 4095)
    assert not layout.same_page(4095, 4096)


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        AddressLayout(block_size=48)
    with pytest.raises(ValueError):
        AddressLayout(page_size=3000)
    with pytest.raises(ValueError):
        AddressLayout(block_size=128, page_size=64)


@given(st.integers(min_value=0, max_value=2**48))
def test_block_base_is_aligned_and_contains_addr(addr):
    layout = AddressLayout()
    base = layout.block_base(addr)
    assert base % layout.block_size == 0
    assert base <= addr < base + layout.block_size


@given(st.integers(min_value=0, max_value=2**48))
def test_block_and_page_are_consistent(addr):
    layout = AddressLayout()
    assert layout.page_of_block(layout.block_of(addr)) == layout.page_of(addr)
