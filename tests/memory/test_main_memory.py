"""Tests for the DDR channel timing model."""

import pytest

from repro.memory.main_memory import MemoryChannel, MemoryController


def test_idle_read_latency_is_device_latency():
    controller = MemoryController(latency_ns=50.0, channels=2)
    result = controller.read(0.0, block=0)
    assert result.latency == pytest.approx(50.0)
    assert result.queue_delay == 0.0
    assert controller.reads == 1


def test_back_to_back_reads_on_one_channel_queue():
    controller = MemoryController(latency_ns=50.0, channels=1, channel_bandwidth_gbps=12.8)
    first = controller.read(0.0, block=0)
    second = controller.read(0.0, block=1)
    assert first.queue_delay == 0.0
    assert second.queue_delay == pytest.approx(64 / 12.8)
    assert second.latency == pytest.approx(50.0 + 64 / 12.8)


def test_reads_spread_across_channels_do_not_queue():
    controller = MemoryController(latency_ns=50.0, channels=2)
    a = controller.read(0.0, block=0)   # channel 0
    b = controller.read(0.0, block=1)   # channel 1
    assert a.queue_delay == 0.0
    assert b.queue_delay == 0.0


def test_infinite_bandwidth_never_queues():
    controller = MemoryController(latency_ns=50.0, channels=1, infinite_bandwidth=True)
    for block in range(20):
        result = controller.read(0.0, block=0)
        assert result.queue_delay == 0.0


def test_writes_counted_and_consume_bandwidth():
    controller = MemoryController(latency_ns=50.0, channels=1)
    controller.write(0.0, block=0)
    result = controller.read(0.0, block=1)
    assert controller.writes == 1
    assert result.queue_delay > 0.0


def test_out_of_order_arrival_is_not_charged_queueing():
    channel = MemoryChannel(12.8)
    channel.occupy(100.0, 64)
    # An access that arrives "earlier" (trace skew) is not penalised.
    assert channel.occupy(10.0, 64) == 0.0


def test_utilisation_and_bytes():
    controller = MemoryController(latency_ns=50.0, channels=2)
    for block in range(8):
        controller.read(float(block), block)
    assert controller.bytes_transferred() == 8 * 64
    assert 0.0 < controller.utilisation(1000.0) <= 1.0
    assert controller.utilisation(0.0) == 0.0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        MemoryController(channels=0)
    with pytest.raises(ValueError):
        MemoryController(latency_ns=-1.0)
    with pytest.raises(ValueError):
        MemoryChannel(0.0)


def test_accesses_property():
    controller = MemoryController()
    controller.read(0.0, 0)
    controller.write(0.0, 1)
    assert controller.accesses == 2
