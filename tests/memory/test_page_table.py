"""Tests for the page table with private/shared classification fields."""

from repro.memory.page_table import PageClassification, PageTable


def test_first_touch_creates_private_entry():
    table = PageTable()
    entry, reclassified = table.touch(5, thread_id=3)
    assert not reclassified
    assert entry.owner_thread == 3
    assert entry.classification is PageClassification.PRIVATE
    assert entry.is_private


def test_same_thread_touch_keeps_private():
    table = PageTable()
    table.touch(5, thread_id=3)
    entry, reclassified = table.touch(5, thread_id=3)
    assert not reclassified
    assert entry.is_private


def test_other_thread_touch_reclassifies_as_shared():
    table = PageTable()
    table.touch(5, thread_id=3)
    entry, reclassified = table.touch(5, thread_id=4)
    assert reclassified
    assert entry.classification is PageClassification.SHARED
    assert table.private_to_shared_transitions == 1


def test_shared_page_stays_shared():
    table = PageTable()
    table.touch(5, thread_id=3)
    table.touch(5, thread_id=4)
    entry, reclassified = table.touch(5, thread_id=3)
    assert not reclassified
    assert entry.classification is PageClassification.SHARED


def test_migration_keeps_private_and_updates_owner():
    table = PageTable()
    table.touch(5, thread_id=3)
    entry, reclassified = table.touch(5, thread_id=4, migrated=True)
    assert not reclassified
    assert entry.is_private
    assert entry.owner_thread == 4
    assert table.migrations == 1


def test_classify_unknown_page_is_shared():
    table = PageTable()
    assert table.classify(99) is PageClassification.SHARED


def test_lookup_addr_uses_layout():
    table = PageTable()
    table.touch(2, thread_id=0)
    entry = table.lookup_addr(2 * 4096 + 100)
    assert entry is not None and entry.page == 2


def test_private_and_shared_counts():
    table = PageTable()
    table.touch(1, thread_id=0)
    table.touch(2, thread_id=0)
    table.touch(2, thread_id=1)
    assert len(table) == 2
    assert table.private_pages() == 1
    assert table.shared_pages() == 1


def test_set_home_is_recorded():
    table = PageTable()
    table.touch(1, thread_id=0)
    table.set_home(1, 3)
    assert table.lookup(1).home_socket == 3
    # setting the home of an unknown page is a no-op
    table.set_home(42, 1)
    assert table.lookup(42) is None
