"""Tests for NUMA allocation policies and the address mapper."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import AddressLayout
from repro.memory.allocation import (
    AddressMapper,
    FirstTouchPolicy,
    InterleavePolicy,
    make_policy,
)


def test_interleave_round_robin():
    policy = InterleavePolicy(4)
    assert [policy.home_of_page(page) for page in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_interleave_ignores_toucher():
    policy = InterleavePolicy(4)
    assert policy.home_of_page(5, toucher_socket=3) == 1


def test_first_touch_pins_to_first_toucher():
    policy = FirstTouchPolicy(4)
    assert policy.home_of_page(10, toucher_socket=2) == 2
    # Subsequent touches by other sockets do not move the page.
    assert policy.home_of_page(10, toucher_socket=3) == 2


def test_first_touch_pin_page_overrides():
    policy = FirstTouchPolicy(4)
    policy.pin_page(7, 1)
    assert policy.home_of_page(7, toucher_socket=3) == 1


def test_first_touch_lookup_without_toucher_is_deterministic():
    policy = FirstTouchPolicy(4)
    assert policy.home_of_page(9) == policy.home_of_page(9)


def test_first_touch_reset():
    policy = FirstTouchPolicy(2)
    policy.home_of_page(3, toucher_socket=1)
    policy.reset()
    assert policy.home_of_page(3, toucher_socket=0) == 0


def test_make_policy_names():
    assert isinstance(make_policy("interleave", 2), InterleavePolicy)
    assert isinstance(make_policy("INT", 2), InterleavePolicy)
    assert isinstance(make_policy("ft1", 2), FirstTouchPolicy)
    assert isinstance(make_policy("ft2", 2), FirstTouchPolicy)
    assert isinstance(make_policy("first_touch", 2), FirstTouchPolicy)
    with pytest.raises(ValueError):
        make_policy("random", 2)


def test_policy_requires_positive_sockets():
    with pytest.raises(ValueError):
        InterleavePolicy(0)


def test_mapper_touch_and_footprint():
    mapper = AddressMapper(FirstTouchPolicy(2), AddressLayout())
    home = mapper.touch(0x10000, socket=1)
    assert home == 1
    assert mapper.home_of_addr(0x10000) == 1
    assert mapper.touched_pages() == 1
    assert mapper.footprint_bytes() == 4096


def test_mapper_home_of_block_matches_page():
    layout = AddressLayout()
    mapper = AddressMapper(InterleavePolicy(4), layout)
    block = layout.block_of(3 * 4096)
    assert mapper.home_of_block(block) == 3


def test_mapper_pages_per_socket_histogram():
    mapper = AddressMapper(InterleavePolicy(2), AddressLayout())
    for page in range(6):
        mapper.touch(page * 4096, socket=0)
    histogram = mapper.pages_per_socket()
    assert histogram == {0: 3, 1: 3}


@given(st.integers(min_value=1, max_value=8), st.lists(st.integers(0, 2**30), max_size=50))
def test_interleave_homes_always_in_range(num_sockets, pages):
    policy = InterleavePolicy(num_sockets)
    for page in pages:
        assert 0 <= policy.home_of_page(page) < num_sockets


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 7)), max_size=60),
)
def test_first_touch_is_sticky(num_sockets, touches):
    policy = FirstTouchPolicy(num_sockets)
    first_seen = {}
    for page, socket in touches:
        home = policy.home_of_page(page, toucher_socket=socket)
        if page not in first_seen:
            first_seen[page] = home
        assert home == first_seen[page]
