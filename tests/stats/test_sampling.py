"""Unit tests for the sampling statistics: plans, CI math, store keying."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.counters import SimulationStats
from repro.stats.sampling import (
    MetricEstimate,
    SampledSimulationStats,
    SamplingPlan,
    SamplingSummary,
    delta_counters,
    estimate_metrics,
    mean_and_half_width,
    ratio_estimate,
    snapshot_counters,
    t_critical,
)
from repro.stats.store import ResultsStore, StoredRun


# ----------------------------------------------------------------------
# t critical values
# ----------------------------------------------------------------------


def test_t_critical_exact_values():
    assert t_critical(0.95, 1) == pytest.approx(12.706)
    assert t_critical(0.95, 9) == pytest.approx(2.262)
    assert t_critical(0.99, 4) == pytest.approx(4.604)
    assert t_critical(0.95, 1000) == pytest.approx(1.960)


def test_t_critical_decreases_with_df():
    for confidence in (0.90, 0.95, 0.99):
        values = [t_critical(confidence, df) for df in range(1, 40)]
        assert values == sorted(values, reverse=True)


def test_t_critical_increases_with_confidence():
    for df in (1, 5, 30, 100):
        assert t_critical(0.90, df) < t_critical(0.95, df) < t_critical(0.99, df)


def test_t_critical_rejects_unknown_confidence():
    with pytest.raises(ValueError, match="confidence"):
        t_critical(0.42, 5)
    with pytest.raises(ValueError, match="degrees of freedom"):
        t_critical(0.95, 0)


# ----------------------------------------------------------------------
# Mean / interval estimators (hypothesis)
# ----------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=2, max_size=40))
def test_mean_half_width_matches_manual_computation(values):
    mean, half = mean_and_half_width(values, confidence=0.95)
    n = len(values)
    expected_mean = sum(values) / n
    variance = sum((v - expected_mean) ** 2 for v in values) / (n - 1)
    expected_half = t_critical(0.95, n - 1) * math.sqrt(variance / n)
    assert mean == pytest.approx(expected_mean, rel=1e-12, abs=1e-9)
    assert half == pytest.approx(expected_half, rel=1e-12, abs=1e-9)
    assert half >= 0


@given(finite_floats, st.integers(min_value=2, max_value=30))
def test_constant_samples_have_zero_width(value, n):
    mean, half = mean_and_half_width([value] * n)
    assert mean == pytest.approx(value)
    assert half == pytest.approx(0.0, abs=1e-6)


@given(st.lists(finite_floats, min_size=2, max_size=40))
def test_wider_confidence_widens_interval(values):
    _, half_95 = mean_and_half_width(values, confidence=0.95)
    _, half_99 = mean_and_half_width(values, confidence=0.99)
    assert half_99 >= half_95


def test_mean_half_width_needs_two_observations():
    with pytest.raises(ValueError, match="at least 2"):
        mean_and_half_width([1.0])


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        ),
        min_size=2,
        max_size=40,
    )
)
def test_ratio_estimate_is_ratio_of_sums(pairs):
    numerators = [num for num, _ in pairs]
    denominators = [den for _, den in pairs]
    ratio, half = ratio_estimate(numerators, denominators)
    assert ratio == pytest.approx(sum(numerators) / sum(denominators), rel=1e-9)
    assert half >= 0


@given(
    st.floats(min_value=0.01, max_value=100, allow_nan=False),
    st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=20),
)
def test_exact_ratio_has_zero_width(true_ratio, denominators):
    """When every unit shows the same ratio, the interval collapses."""
    numerators = [true_ratio * den for den in denominators]
    ratio, half = ratio_estimate(numerators, denominators)
    assert ratio == pytest.approx(true_ratio, rel=1e-9)
    assert half == pytest.approx(0.0, abs=1e-6 * true_ratio + 1e-9)


def test_ratio_estimate_rejects_degenerate_inputs():
    with pytest.raises(ValueError, match="equal length"):
        ratio_estimate([1.0], [1.0, 2.0])
    with pytest.raises(ValueError, match="at least 2"):
        ratio_estimate([1.0], [2.0])
    with pytest.raises(ValueError, match="zero"):
        ratio_estimate([1.0, 2.0], [0.0, 0.0])


@settings(max_examples=25)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_interval_coverage_on_known_distribution(seed):
    """A 99% interval over iid uniform unit means rarely misses the truth.

    Deterministic per example (seeded RNG); across the hypothesis examples
    this is a smoke-level calibration check, not a precision measurement --
    a miss probability of 1% per example keeps the test stable.
    """
    import random

    rng = random.Random(seed)
    true_mean = 0.5
    unit_means = [
        sum(rng.random() for _ in range(64)) / 64 for _ in range(12)
    ]
    mean, half = mean_and_half_width(unit_means, confidence=0.99)
    assert abs(mean - true_mean) <= half + 0.05


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


@given(
    region=st.integers(min_value=1, max_value=100_000),
    units=st.integers(min_value=2, max_value=32),
    detail=st.integers(min_value=1, max_value=200),
    warmup=st.integers(min_value=0, max_value=200),
    seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**20)),
)
def test_plan_units_cover_region_exactly(region, units, detail, warmup, seed):
    plan = SamplingPlan(num_units=units, detail=detail, warmup=warmup, seed=seed)
    if region < plan.min_region():
        with pytest.raises(ValueError, match="too short"):
            plan.units(region)
        return
    layout = plan.units(region)
    assert sum(unit.length for unit in layout) == region
    detail_units = [unit for unit in layout if unit.detail]
    assert len(detail_units) == units
    for unit in detail_units:
        assert unit.detail == detail
        assert unit.warmup == warmup
    for unit in layout:
        assert unit.fastforward >= 0


@given(
    region=st.integers(min_value=1000, max_value=50_000),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_plan_jitter_is_deterministic_per_seed(region, seed):
    plan = SamplingPlan(num_units=4, detail=50, warmup=20, seed=seed)
    assert plan.units(region) == plan.units(region)


@given(region=st.integers(min_value=8, max_value=100_000))
def test_for_region_always_fits(region):
    plan = SamplingPlan.for_region(region)
    layout = plan.units(region)
    assert sum(unit.length for unit in layout) == region


def test_plan_spec_round_trip():
    plan = SamplingPlan(
        num_units=6, detail=75, warmup=25, confidence=0.99, bias_floor=0.05, seed=3
    )
    assert SamplingPlan.from_spec(plan.to_spec()) == plan
    assert SamplingPlan.from_json_dict(plan.to_json_dict()) == plan


def test_plan_spec_key_order_is_canonical():
    a = SamplingPlan.from_spec("units=4,detail=60,warmup=30")
    b = SamplingPlan.from_spec("warmup=30, detail=60, units=4")
    assert a == b
    assert a.to_json_dict() == b.to_json_dict()


def test_plan_spec_rejects_bad_input():
    with pytest.raises(ValueError, match="unknown sample-plan key"):
        SamplingPlan.from_spec("bogus=1")
    with pytest.raises(ValueError, match="key=value"):
        SamplingPlan.from_spec("units")
    with pytest.raises(ValueError, match="bad sample-plan value"):
        SamplingPlan.from_spec("units=four")
    with pytest.raises(ValueError, match="at least 2 units"):
        SamplingPlan.from_spec("units=1")


# ----------------------------------------------------------------------
# Metric estimation over window samples
# ----------------------------------------------------------------------


def _window(l1_hits, l1_misses, read_total, read_count):
    stats = SimulationStats()
    stats.l1_hits = l1_hits
    stats.l1_misses = l1_misses
    stats.read_latency.total = read_total
    stats.read_latency.count = read_count
    return snapshot_counters(stats)


def test_estimate_metrics_skips_undefined_denominators():
    samples = [_window(10, 5, 100.0, 15), _window(12, 3, 90.0, 15)]
    estimates = estimate_metrics(samples)
    assert "l1_hit_rate" in estimates
    assert "amat_ns" in estimates
    # No DRAM-cache accesses in either window -> metric omitted entirely.
    assert "dram_cache_hit_rate" not in estimates
    assert estimates["l1_hit_rate"].mean == pytest.approx(22 / 30)


def test_estimate_metrics_applies_bias_floor():
    samples = [_window(10, 10, 100.0, 20), _window(10, 10, 100.0, 20)]
    estimates = estimate_metrics(samples, bias_floor=0.1)
    # Identical windows -> zero sampling variance; the floor still widens.
    assert estimates["amat_ns"].half_width == pytest.approx(0.1 * 5.0)


def test_snapshot_delta_isolates_a_window():
    stats = SimulationStats()
    stats.l1_hits = 7
    before = snapshot_counters(stats)
    stats.l1_hits += 5
    stats.read_latency.add(12.0)
    delta = delta_counters(before, snapshot_counters(stats))
    assert delta["l1_hits"] == 5
    assert delta["read_latency_total"] == pytest.approx(12.0)
    assert delta["read_latency_count"] == 1
    assert delta["llc_hits"] == 0


# ----------------------------------------------------------------------
# Sampled stats serialisation + store keying
# ----------------------------------------------------------------------


def _sampled_stats():
    stats = SampledSimulationStats()
    stats.l1_hits = 100
    stats.read_latency.add(30.0)
    stats.core_finish_ns[0] = 123.5
    stats.sampling = SamplingSummary(
        plan=SamplingPlan(num_units=4, detail=50, warmup=25, seed=9),
        metrics={
            "amat_ns": MetricEstimate(
                mean=30.0, half_width=1.5, units=4, confidence=0.95
            )
        },
        detail_accesses=200,
        covered_accesses=1000,
    )
    return stats


def test_sampled_stats_json_round_trip():
    stats = _sampled_stats()
    rebuilt = SampledSimulationStats.from_json_dict(stats.to_json_dict())
    assert rebuilt.to_json_dict() == stats.to_json_dict()
    assert rebuilt.sampling.metrics["amat_ns"].contains(30.5)
    assert rebuilt.sampling.scale == pytest.approx(5.0)


def test_store_round_trips_sampled_stats(tmp_path):
    store = ResultsStore(tmp_path / "store")
    stats = _sampled_stats()
    store.put(
        StoredRun(
            key="sampled-key",
            params={"engine": "sampled"},
            stats=stats,
            total_time_ns=1.0,
            inter_socket_bytes=2,
            accesses_executed=3,
        )
    )
    reloaded = ResultsStore(tmp_path / "store")
    record = reloaded.get("sampled-key")
    assert isinstance(record.stats, SampledSimulationStats)
    assert record.stats.to_json_dict() == stats.to_json_dict()


def test_sweep_point_keys_separate_sampled_from_exact(tmp_path):
    from repro.experiments.runner import SweepPoint, sweep_point_key

    exact = SweepPoint(workload="facesim", protocol="c3d")
    sampled = SweepPoint(
        workload="facesim", protocol="c3d", sample_plan="units=4,detail=60,warmup=30"
    )
    k_exact = sweep_point_key(exact)
    k_sampled = sweep_point_key(sampled)
    assert k_exact != k_sampled

    # Equivalent spec strings canonicalise to the same key; different plans
    # (or an engine="sampled" auto plan) stay distinct.
    reordered = SweepPoint(
        workload="facesim", protocol="c3d", sample_plan="warmup=30,units=4,detail=60"
    )
    assert sweep_point_key(reordered) == k_sampled
    denser = SweepPoint(
        workload="facesim", protocol="c3d", sample_plan="units=8,detail=60,warmup=30"
    )
    assert sweep_point_key(denser) != k_sampled
    assert sweep_point_key(exact, engine="sampled") != k_exact
    assert sweep_point_key(exact, engine="sampled") != k_sampled

    # Both flavours of the same point coexist in one store.
    store = ResultsStore(tmp_path / "store")
    for key in (k_exact, k_sampled):
        store.put(
            StoredRun(
                key=key,
                params={},
                stats=SimulationStats(),
                total_time_ns=0.0,
                inter_socket_bytes=0,
                accesses_executed=0,
            )
        )
    assert len(store) == 2
