"""Tests for the JSON/CSV export helpers."""

import csv
import json

from repro.stats.export import export_json, export_series_csv, flatten_series, load_json


SERIES = {
    "streamcluster": {"c3d": 1.5, "snoopy": 0.9},
    "facesim": {"c3d": 1.1, "snoopy": 0.85},
}


def test_export_and_load_json_round_trip(tmp_path):
    path = export_json(SERIES, tmp_path / "out" / "fig6.json")
    assert path.exists()
    assert load_json(path) == SERIES
    # File is valid JSON with sorted keys and a trailing newline.
    text = path.read_text()
    assert text.endswith("\n")
    json.loads(text)


def test_flatten_series():
    rows = flatten_series(SERIES)
    assert rows[0]["row"] == "streamcluster"
    assert rows[0]["c3d"] == 1.5
    assert len(rows) == 2


def test_export_series_csv(tmp_path):
    path = export_series_csv(SERIES, tmp_path / "fig6.csv")
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert rows[0]["row"] == "streamcluster"
    assert float(rows[1]["snoopy"]) == 0.85
    assert set(rows[0]) == {"row", "c3d", "snoopy"}
