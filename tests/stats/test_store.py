"""Tests for the persistent results store and the stats JSON round-trip."""

import dataclasses
import json


from repro.stats.counters import LatencyAccumulator, SimulationStats
from repro.stats.store import (
    STORE_SCHEMA_VERSION,
    MissingRunError,
    ResultsStore,
    StoredRun,
    content_key,
)


def _sample_stats() -> SimulationStats:
    stats = SimulationStats()
    stats.reads = 123
    stats.writes = 45
    stats.l1_hits = 100
    stats.memory_reads_remote = 7
    stats.store_buffer_stall_ns = 1.0 / 3.0          # non-trivial mantissa
    stats.read_latency.add(13.333333333333334)
    stats.read_latency.add(97.1)
    stats.llc_miss_latency.add(250.00000000000003)
    stats.core_finish_ns = {0: 1234.5, 7: 6.02e23}
    stats.extra["ablation.x"] = 0.1 + 0.2            # classic float dust
    return stats


# ----------------------------------------------------------------------
# SimulationStats <-> JSON
# ----------------------------------------------------------------------


def test_stats_round_trip_is_bit_identical():
    stats = _sample_stats()
    # Through an actual JSON string, as the store does.
    restored = SimulationStats.from_json_dict(
        json.loads(json.dumps(stats.to_json_dict()))
    )
    assert restored.to_json_dict() == stats.to_json_dict()
    assert restored.as_dict() == stats.as_dict()
    assert restored.store_buffer_stall_ns == stats.store_buffer_stall_ns
    assert restored.read_latency.total == stats.read_latency.total
    assert restored.read_latency.maximum == stats.read_latency.maximum
    assert restored.core_finish_ns == stats.core_finish_ns     # int keys restored
    assert restored.extra == stats.extra


def test_stats_serialisation_covers_every_field():
    # A newly added counter must make a conscious serialisation choice; this
    # guards against silently dropping it from the store round-trip.
    covered = (
        set(SimulationStats._MERGE_SUM_FIELDS)
        | set(SimulationStats._LATENCY_FIELDS)
        | {"core_finish_ns", "extra"}
    )
    all_fields = {f.name for f in dataclasses.fields(SimulationStats)}
    assert covered == all_fields


def test_latency_accumulator_round_trip():
    acc = LatencyAccumulator()
    acc.add(0.30000000000000004)
    acc.add(7.0)
    restored = LatencyAccumulator.from_json_dict(acc.to_json_dict())
    assert restored == acc


# ----------------------------------------------------------------------
# content_key
# ----------------------------------------------------------------------


def test_content_key_is_order_independent_and_value_sensitive():
    a = {"workload": "facesim", "protocol": "c3d", "scale": 512}
    b = {"scale": 512, "protocol": "c3d", "workload": "facesim"}
    assert content_key(a) == content_key(b)
    assert content_key(a) != content_key({**a, "scale": 1024})
    assert content_key(a) != content_key({**a, "protocol": "baseline"})
    # 64 hex chars of SHA-256.
    assert len(content_key(a)) == 64


def test_content_key_distinguishes_nested_payloads():
    payload = {"config": {"llc": {"size_bytes": 65536}}, "schema": STORE_SCHEMA_VERSION}
    changed = {"config": {"llc": {"size_bytes": 131072}}, "schema": STORE_SCHEMA_VERSION}
    assert content_key(payload) != content_key(changed)


# ----------------------------------------------------------------------
# ResultsStore
# ----------------------------------------------------------------------


def _record(key: str, reads: int = 5) -> StoredRun:
    stats = SimulationStats()
    stats.reads = reads
    stats.read_latency.add(42.5)
    return StoredRun(
        key=key,
        params={"kind": "test", "reads": reads},
        stats=stats,
        total_time_ns=321.5,
        inter_socket_bytes=64,
        accesses_executed=reads,
        wall_clock_s=0.01,
    )


def test_store_put_get_round_trip(tmp_path):
    store = ResultsStore(tmp_path / "store")
    key = content_key({"p": 1})
    assert store.get(key) is None and store.misses == 1
    store.put(_record(key))
    loaded = store.get(key)
    assert loaded is not None and store.hits == 1
    assert loaded.stats.to_json_dict() == _record(key).stats.to_json_dict()
    assert loaded.total_time_ns == 321.5
    assert loaded.inter_socket_bytes == 64
    assert key in store and len(store) == 1


def test_store_persists_across_instances(tmp_path):
    path = tmp_path / "store"
    ResultsStore(path).put(_record("k1"))
    reopened = ResultsStore(path)
    assert reopened.get("k1") is not None
    assert reopened.keys() == ["k1"]


def test_store_skips_torn_trailing_line(tmp_path):
    path = tmp_path / "store"
    store = ResultsStore(path)
    store.put(_record("k1"))
    store.put(_record("k2"))
    # Simulate a writer killed mid-append: a torn, unparsable final line.
    # (Non-hex test keys all live in the overflow shard file.)
    with store.shard_path("k1").open("a", encoding="utf-8") as handle:
        handle.write('{"key": "k3", "params": {"tr')
    reopened = ResultsStore(path)
    assert set(reopened.keys()) == {"k1", "k2"}
    # The store stays appendable after the torn line.
    reopened.put(_record("k4"))
    assert set(ResultsStore(path).keys()) == {"k1", "k2", "k4"}


def test_store_duplicate_keys_last_wins(tmp_path):
    store = ResultsStore(tmp_path / "store")
    store.put(_record("k1", reads=5))
    store.put(_record("k1", reads=9))
    assert len(store) == 1
    assert ResultsStore(tmp_path / "store").get("k1").stats.reads == 9


def test_store_clean_removes_everything(tmp_path):
    store = ResultsStore(tmp_path / "store")
    store.put(_record("k1"))
    store.put(_record("k2"))
    assert store.clean() == 2
    assert len(store) == 0
    assert store.shard_paths() == []
    assert ResultsStore(tmp_path / "store").get("k1") is None


def test_missing_run_error_names_the_run():
    error = MissingRunError("abcdef0123456789", {"kind": "context-run",
                                                "workload": "facesim",
                                                "protocol": "c3d"})
    message = str(error)
    assert "facesim" in message and "c3d" in message
    assert isinstance(error, KeyError)
