"""Tests for the report-formatting helpers."""


import pytest

from repro.stats.report import format_series, format_table, geometric_mean, normalise


def test_format_table_alignment_and_title():
    text = format_table(
        ["name", "value"],
        [["streamcluster", 1.507], ["facesim", 1.1]],
        title="Speedups",
    )
    lines = text.splitlines()
    assert lines[0] == "Speedups"
    assert "streamcluster" in text
    assert "1.507" in text
    # All data rows have the same width.
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_format_series_fills_missing_cells_with_nan():
    series = {"a": {"x": 1.0}, "b": {"x": 2.0, "y": 3.0}}
    text = format_series(series)
    assert "nan" in text
    assert "workload" in text


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0, -1.0]) == 0.0
    assert geometric_mean([2.0, 0.0]) == pytest.approx(2.0)  # non-positive ignored


def test_normalise():
    values = {"baseline": 4.0, "c3d": 2.0}
    normalised = normalise(values, "baseline")
    assert normalised == {"baseline": 1.0, "c3d": 0.5}
    with pytest.raises(ZeroDivisionError):
        normalise({"baseline": 0.0}, "baseline")


def test_format_table_non_float_cells():
    text = format_table(["a", "b"], [[1, "x"]])
    assert "1" in text and "x" in text
