"""Tests for the AMAT decomposition helpers."""

import pytest

from repro.stats.amat import amat_breakdown, estimate_amat
from repro.stats.counters import SimulationStats


def test_estimate_amat_closed_form():
    fractions = {"l1": 0.8, "memory": 0.2}
    latencies = {"l1": 1.0, "memory": 100.0}
    assert estimate_amat(fractions, latencies) == pytest.approx(0.8 + 20.0)


def test_estimate_amat_missing_latency():
    with pytest.raises(ValueError):
        estimate_amat({"l1": 1.0}, {})


def test_breakdown_fractions_sum_to_one():
    stats = SimulationStats()
    stats.reads = 100
    stats.l1_hits = 50
    stats.llc_hits = 20
    stats.served_local_dram_cache = 10
    stats.served_remote_memory = 20
    stats.read_latency.add(10.0)
    breakdown = amat_breakdown(stats)
    assert sum(breakdown.fractions.values()) == pytest.approx(1.0)
    assert breakdown.amat_ns == pytest.approx(10.0)
    text = breakdown.format()
    assert "AMAT" in text and "l1" in text


def test_breakdown_with_no_reads():
    breakdown = amat_breakdown(SimulationStats())
    assert breakdown.total_reads == 1
    assert sum(breakdown.fractions.values()) == 0.0
