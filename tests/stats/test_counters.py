"""Tests for the statistics counters."""

import pytest

from repro.stats.counters import LatencyAccumulator, SimulationStats


def test_latency_accumulator():
    acc = LatencyAccumulator()
    assert acc.mean == 0.0
    acc.add(10.0)
    acc.add(30.0)
    assert acc.count == 2
    assert acc.mean == pytest.approx(20.0)
    assert acc.maximum == 30.0


def test_memory_access_aggregates():
    stats = SimulationStats()
    stats.memory_reads_local = 10
    stats.memory_reads_remote = 30
    stats.memory_writes_local = 5
    stats.memory_writes_remote = 15
    assert stats.memory_accesses == 60
    assert stats.memory_reads == 40
    assert stats.memory_writes == 20
    assert stats.remote_memory_fraction() == pytest.approx(45 / 60)
    assert stats.remote_read_fraction() == pytest.approx(30 / 40)


def test_fractions_with_no_accesses_are_zero():
    stats = SimulationStats()
    assert stats.remote_memory_fraction() == 0.0
    assert stats.remote_read_fraction() == 0.0
    assert stats.l1_hit_rate() == 0.0
    assert stats.llc_hit_rate() == 0.0
    assert stats.dram_cache_hit_rate() == 0.0
    assert stats.amat_ns() == 0.0
    assert stats.total_time_ns() == 0.0


def test_hit_rates():
    stats = SimulationStats()
    stats.l1_hits, stats.l1_misses = 80, 20
    stats.llc_hits, stats.llc_misses = 10, 10
    stats.dram_cache_hits, stats.dram_cache_misses = 3, 7
    assert stats.l1_hit_rate() == pytest.approx(0.8)
    assert stats.llc_hit_rate() == pytest.approx(0.5)
    assert stats.dram_cache_hit_rate() == pytest.approx(0.3)


def test_total_time_is_slowest_core():
    stats = SimulationStats()
    stats.core_finish_ns = {0: 100.0, 1: 250.0, 2: 50.0}
    assert stats.total_time_ns() == 250.0


def test_off_socket_serves():
    stats = SimulationStats()
    stats.served_remote_memory = 2
    stats.served_remote_llc = 3
    stats.served_remote_dram_cache = 4
    assert stats.off_socket_serves() == 9


def test_as_dict_contains_key_quantities():
    stats = SimulationStats()
    stats.reads = 5
    stats.extra["ablation"] = 1.5
    flattened = stats.as_dict()
    assert flattened["reads"] == 5
    assert "amat_ns" in flattened
    assert "remote_memory_fraction" in flattened
    assert flattened["extra.ablation"] == 1.5


@pytest.mark.parametrize("count", [1, 2, 511, 512, 513, 2000])
def test_add_constant_is_bit_identical_to_the_sequential_loop(count):
    """Both the <=512 loop and the >512 numpy path must fold exactly like
    repeated add() -- batch engines rely on this for bit-identity."""
    value = 0.1  # not exactly representable: rounding order matters
    reference = LatencyAccumulator()
    reference.add(3.7)  # non-zero starting total
    batched = LatencyAccumulator()
    batched.add(3.7)
    for _ in range(count):
        reference.add(value)
    batched.add_constant(value, count)
    assert batched.total == reference.total  # exact, not approx
    assert batched.count == reference.count
    assert batched.maximum == reference.maximum


def test_add_constant_differs_from_naive_multiplication():
    """Guard the guard: count * value WOULD round differently, so a future
    'simplification' to multiplication must fail this test."""
    acc = LatencyAccumulator()
    acc.add_constant(0.1, 2000)
    assert acc.total != 2000 * 0.1


def test_add_constant_with_nonpositive_count_is_a_noop():
    acc = LatencyAccumulator()
    acc.add(5.0)
    acc.add_constant(1.0, 0)
    acc.add_constant(1.0, -3)
    assert acc.total == 5.0
    assert acc.count == 1
    assert acc.maximum == 5.0


def test_add_constant_updates_the_maximum():
    acc = LatencyAccumulator()
    acc.add(5.0)
    acc.add_constant(9.0, 600)
    assert acc.maximum == 9.0
