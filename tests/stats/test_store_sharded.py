"""Sharded store layout: sharding, migration byte-identity, legacy
read-only compatibility, and concurrent multi-process writers.

docs/serving.md documents the layout these tests pin.
"""

import json
import multiprocessing

import pytest

from repro.stats.counters import SimulationStats
from repro.stats.store import (
    LegacyStoreError,
    ResultsStore,
    StoredRun,
    content_key,
    shard_of,
)


def _record(key: str, reads: int = 5) -> StoredRun:
    stats = SimulationStats()
    stats.reads = reads
    stats.read_latency.add(42.5)
    return StoredRun(
        key=key,
        params={"kind": "test", "reads": reads},
        stats=stats,
        total_time_ns=321.5,
        inter_socket_bytes=64,
        accesses_executed=reads,
        wall_clock_s=0.01,
    )


def _hex_key(i: int) -> str:
    return content_key({"point": i})


# ----------------------------------------------------------------------
# Layout
# ----------------------------------------------------------------------


def test_shard_of_spreads_hex_keys_and_overflows_the_rest():
    assert shard_of("0abc") == "0"
    assert shard_of("f000") == "f"
    assert shard_of("F000") == "f"
    assert shard_of("k1") == "x"          # non-hex test keys
    assert shard_of("") == "x"


def test_new_store_uses_sharded_layout(tmp_path):
    store = ResultsStore(tmp_path / "store")
    keys = [_hex_key(i) for i in range(32)]
    for key in keys:
        store.put(_record(key))
    assert store.layout == "sharded"
    assert store.meta_path.exists()
    meta = json.loads(store.meta_path.read_text())
    assert meta["layout"] == "sharded/v1" and meta["shards"] == 16
    # Every record sits in the shard file its key prefix names.
    for key in keys:
        assert key in store.shard_path(key).read_text()
    # 32 hashed keys land in several distinct shards.
    assert len(store.shard_paths()) > 4
    reopened = ResultsStore(tmp_path / "store")
    assert set(reopened.keys()) == set(keys)
    assert len(reopened) == 32


def test_get_touches_only_one_shard_index(tmp_path):
    store = ResultsStore(tmp_path / "store")
    keys = [_hex_key(i) for i in range(32)]
    for key in keys:
        store.put(_record(key))
    reopened = ResultsStore(tmp_path / "store")
    assert reopened.get(keys[0]) is not None
    loaded_shards = set(reopened._shard_index)
    assert loaded_shards == {shard_of(keys[0])}


def test_known_keys_scans_without_parsing_bodies(tmp_path):
    store = ResultsStore(tmp_path / "store")
    key = _hex_key(1)
    store.put(_record(key))
    # Corrupt the record body but keep the key field intact: the fast
    # key index still sees the point, a full parse would not.
    path = store.shard_path(key)
    path.write_text(path.read_text().replace('"reads":5', '"raeds":<'))
    fresh = ResultsStore(tmp_path / "store")
    assert fresh.known_keys() == {key}


# ----------------------------------------------------------------------
# Legacy compatibility + migration
# ----------------------------------------------------------------------


def _write_legacy(directory, records, extra_lines=()):
    """Hand-build a pre-shard single-file store; returns its raw lines."""
    directory.mkdir(parents=True, exist_ok=True)
    lines = [ResultsStore.encode_record(record) for record in records]
    # A pre-checksum legacy record: canonical body, no "check" field.
    lines.extend(extra_lines)
    (directory / "results.jsonl").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    return lines


def test_legacy_store_opens_read_only(tmp_path):
    key = _hex_key(7)
    _write_legacy(tmp_path / "legacy", [_record(key)])
    store = ResultsStore(tmp_path / "legacy")
    assert store.layout == "legacy"
    assert store.get(key).stats.reads == 5      # reads work
    assert store.verify().clean
    with pytest.raises(LegacyStoreError) as exc:
        store.put(_record(_hex_key(8)))
    assert "repro store migrate" in str(exc.value)


def test_migrate_is_byte_identical_and_atomic_commit(tmp_path):
    records = [_record(_hex_key(i), reads=i + 1) for i in range(12)]
    unchecksummed = json.dumps(
        _record(_hex_key(50)).to_json_dict(), sort_keys=True,
        separators=(",", ":"),
    )
    duplicate = ResultsStore.encode_record(_record(_hex_key(0), reads=99))
    lines = _write_legacy(
        tmp_path / "old", records,
        extra_lines=[unchecksummed, duplicate, '{"torn-garbage'],
    )
    valid_lines = lines[:-1]                     # all but the torn line

    store = ResultsStore(tmp_path / "old")
    before = {r.key: r.to_json_dict() for r in store.records()}
    report = store.migrate()
    assert report.migrated == len(valid_lines)
    assert report.dropped_corrupt == 1
    assert report.removed_legacy

    migrated = ResultsStore(tmp_path / "old")
    assert migrated.layout == "sharded"
    assert not migrated.results_path.exists()
    # Every valid record line was copied byte for byte (keys *and* bodies;
    # duplicates and the unchecksummed legacy record included).
    shard_lines = []
    for path in migrated.shard_paths():
        shard_lines.extend(
            line for line in path.read_text(encoding="utf-8").split("\n") if line
        )
    assert sorted(shard_lines) == sorted(valid_lines)
    # Within a shard, original file order (hence last-wins) is preserved.
    dup_shard = migrated.shard_path(_hex_key(0)).read_text()
    assert dup_shard.index('"reads":1') < dup_shard.index('"reads":99')
    assert migrated.get(_hex_key(0)).stats.reads == 99
    # The migrated store verifies clean and serves identical records.
    assert migrated.verify().clean
    assert {r.key: r.to_json_dict() for r in migrated.records()} == before
    # Migrated store is writable again.
    migrated.put(_record(_hex_key(60)))
    assert len(ResultsStore(tmp_path / "old")) == len(before) + 1


def test_migrate_is_idempotent(tmp_path):
    _write_legacy(tmp_path / "old", [_record(_hex_key(3))])
    store = ResultsStore(tmp_path / "old")
    assert store.migrate().migrated == 1
    again = ResultsStore(tmp_path / "old").migrate()
    assert again.migrated == 0 and "already sharded" in again.format()


def test_store_cli_migrate(tmp_path, capsys):
    from repro.stats.store import main as store_main

    _write_legacy(tmp_path / "old", [_record(_hex_key(i)) for i in range(4)])
    assert store_main(["migrate", "--store", str(tmp_path / "old")]) == 0
    out = capsys.readouterr().out
    assert "migrated" in out and "verdict: clean" in out
    assert store_main(["compact", "--store", str(tmp_path / "old"),
                       "--json"]) == 0
    out = capsys.readouterr().out
    decoder = json.JSONDecoder()
    payload, _ = decoder.raw_decode(out.strip())
    assert payload["kept"] == 4


# ----------------------------------------------------------------------
# Concurrent writer processes
# ----------------------------------------------------------------------

_SHARED_KEYS = [content_key({"shared": i}) for i in range(5)]


def _writer_process(directory: str, writer_id: int, disjoint: int) -> None:
    store = ResultsStore(directory)
    for i in range(disjoint):
        key = content_key({"writer": writer_id, "point": i})
        store.put(_record(key, reads=writer_id * 1000 + i))
    # Overlapping keys: every writer appends the same records (same key ->
    # same payload by construction, as in real campaigns).
    for i, key in enumerate(_SHARED_KEYS):
        store.put(_record(key, reads=7 + i))


def test_concurrent_writer_processes_interleave_cleanly(tmp_path):
    directory = tmp_path / "store"
    writers, disjoint = 4, 20
    processes = [
        multiprocessing.Process(
            target=_writer_process, args=(str(directory), w, disjoint)
        )
        for w in range(writers)
    ]
    for proc in processes:
        proc.start()
    for proc in processes:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    store = ResultsStore(directory)
    report = store.verify()
    assert report.clean                          # no torn/interleaved bytes
    assert len(store) == writers * disjoint + len(_SHARED_KEYS)
    # Overlapping appends are duplicates of bit-identical records.
    assert all(count == writers for count in report.duplicate_keys.values())
    assert set(report.duplicate_keys) == set(_SHARED_KEYS)
    for i, key in enumerate(_SHARED_KEYS):
        assert store.get(key).stats.reads == 7 + i
    # Compaction collapses the duplicates and stays clean.
    compacted = store.compact()
    assert compacted.collapsed_duplicates == (writers - 1) * len(_SHARED_KEYS)
    assert ResultsStore(directory).verify().duplicate_keys == {}
