"""Store integrity: checksums, corruption accounting, verify/repair.

The property tests use hypothesis to corrupt a healthy JSONL log in
arbitrary ways (truncation, garbage lines, in-place byte damage, duplicate
appends) and assert that ``verify`` finds the damage and ``repair``
round-trips the store to a clean state that still serves every record a
plain load could salvage.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.counters import SimulationStats
from repro.stats.store import (
    ResultsStore,
    StoreCorruptionWarning,
    StoredRun,
)


def _record(key: str, reads: int = 5) -> StoredRun:
    stats = SimulationStats()
    stats.reads = reads
    stats.read_latency.add(42.5)
    return StoredRun(
        key=key,
        params={"kind": "test", "reads": reads},
        stats=stats,
        total_time_ns=321.5,
        inter_socket_bytes=64,
        accesses_executed=reads,
        wall_clock_s=0.01,
    )


def _populate(path, n: int = 4) -> ResultsStore:
    store = ResultsStore(path)
    for i in range(n):
        store.put(_record(f"k{i}", reads=i + 1))
    return store


# ----------------------------------------------------------------------
# Checksums
# ----------------------------------------------------------------------


def test_checksum_catches_altered_bytes_that_still_parse(tmp_path):
    store = _populate(tmp_path / "store", n=2)
    # Flip a digit inside a stored float: the line is still valid JSON with
    # a valid schema, so only the checksum can catch it.  (All non-hex test
    # keys land in one overflow shard file.)
    text = store.shard_path("k0").read_text(encoding="utf-8")
    assert '"total_time_ns":321.5' in text
    store.shard_path("k0").write_text(
        text.replace('"total_time_ns":321.5', '"total_time_ns":321.7', 1),
        encoding="utf-8",
    )
    with pytest.warns(StoreCorruptionWarning):
        reopened = ResultsStore(tmp_path / "store")
        assert len(reopened) == 1
    assert reopened.corrupt_records == 1
    report = reopened.verify()
    assert not report.clean
    assert [issue.kind for issue in report.issues] == ["checksum"]


def test_corrupt_records_counted_and_warned_once(tmp_path):
    store = _populate(tmp_path / "store", n=3)
    with store.shard_path("k0").open("a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write('{"params": {"tr')
    with pytest.warns(StoreCorruptionWarning) as caught:
        reopened = ResultsStore(tmp_path / "store")
        assert set(reopened.keys()) == {"k0", "k1", "k2"}
    assert len(caught) == 1
    assert "2 corrupt/torn record line(s)" in str(caught[0].message)
    assert str(reopened.shard_path("k0")) in str(caught[0].message)
    assert reopened.corrupt_records == 2
    assert [lineno for lineno, _reason in reopened.corrupt_locations] == [4, 5]


# ----------------------------------------------------------------------
# verify / repair
# ----------------------------------------------------------------------


def test_verify_clean_store(tmp_path):
    store = _populate(tmp_path / "store")
    report = store.verify()
    assert report.clean
    assert report.total_lines == report.valid_records == report.unique_keys == 4
    assert "verdict: clean" in report.format()


def test_verify_classifies_torn_vs_unparsable_vs_duplicates(tmp_path):
    store = _populate(tmp_path / "store", n=2)
    store.put(_record("k0", reads=1))        # duplicate (bit-identical)
    with store.shard_path("k0").open("a", encoding="utf-8") as handle:
        handle.write("garbage line\n")
        handle.write('{"key": "torn"')      # no trailing newline: torn
    report = ResultsStore(tmp_path / "store").verify()
    assert sorted(issue.kind for issue in report.issues) == ["torn", "unparsable"]
    assert report.duplicate_keys == {"k0": 2}
    assert report.clean is False


def test_repair_compacts_to_clean_store(tmp_path):
    store = _populate(tmp_path / "store", n=3)
    store.put(_record("k1", reads=2))        # duplicate
    with store.shard_path("k0").open("a", encoding="utf-8") as handle:
        handle.write("garbage\n")
        handle.write('{"key": "torn", "par')
    store = ResultsStore(tmp_path / "store")
    with pytest.warns(StoreCorruptionWarning):
        before = {record.key: record.stats.reads for record in store.records()}
    repair = store.repair()
    assert repair.kept == 3
    assert repair.dropped_corrupt == 2
    assert repair.collapsed_duplicates == 1
    after = ResultsStore(tmp_path / "store")
    assert after.verify().clean
    assert {record.key: record.stats.reads for record in after.records()} == before


def test_repair_adds_checksums_to_legacy_records(tmp_path):
    store = ResultsStore(tmp_path / "store")
    # A pre-checksum record: canonical body, no "check" field.
    legacy = _record("legacy").to_json_dict()
    store.results_path.parent.mkdir(parents=True)
    store.results_path.write_text(
        json.dumps(legacy, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    assert store.verify().unchecksummed == 1
    store.repair()
    report = ResultsStore(tmp_path / "store").verify()
    assert report.unchecksummed == 0 and report.clean


def test_store_cli_verify_and_repair(tmp_path, capsys):
    from repro.stats.store import main as store_main

    store = _populate(tmp_path / "store", n=2)
    assert store_main(["verify", str(tmp_path / "store")]) == 0
    with store.shard_path("k0").open("a", encoding="utf-8") as handle:
        handle.write("broken\n")
    assert store_main(["verify", str(tmp_path / "store")]) == 1
    assert "CORRUPT" in capsys.readouterr().out
    assert store_main(["repair", str(tmp_path / "store")]) == 0
    out = capsys.readouterr().out
    assert "repaired" in out and "verdict: clean" in out
    assert store_main(["verify", str(tmp_path / "store")]) == 0


# ----------------------------------------------------------------------
# Property tests: arbitrary corruption round-trips through repair
# ----------------------------------------------------------------------


@st.composite
def _corruptions(draw):
    """A list of edit operations applied to a healthy JSONL log."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("truncate-tail"), st.integers(1, 40)),
                st.tuples(
                    st.just("garbage-line"),
                    st.text(
                        alphabet=st.characters(
                            blacklist_categories=("Cs",), blacklist_characters="\n"
                        ),
                        max_size=30,
                    ),
                ),
                st.tuples(st.just("flip-byte"), st.integers(0, 10_000)),
                st.tuples(st.just("duplicate-line"), st.integers(0, 10_000)),
            ),
            max_size=6,
        )
    )


def _apply_corruptions(path, operations) -> None:
    for op, arg in operations:
        raw = path.read_bytes()
        if op == "truncate-tail" and len(raw) > arg:
            path.write_bytes(raw[:-arg])
        elif op == "garbage-line":
            with path.open("a", encoding="utf-8") as handle:
                handle.write(arg + "\n")
        elif op == "flip-byte" and raw:
            at = arg % len(raw)
            if raw[at : at + 1] != b"\n":
                path.write_bytes(raw[:at] + b"?" + raw[at + 1 :])
        elif op == "duplicate-line":
            lines = raw.split(b"\n")
            if lines and lines[-1] == b"":
                lines.pop()
            if lines:
                with path.open("ab") as handle:
                    handle.write(lines[arg % len(lines)] + b"\n")


@settings(max_examples=40, deadline=None)
@given(operations=_corruptions())
def test_repair_round_trips_arbitrary_corruption(tmp_path_factory, operations):
    path = tmp_path_factory.mktemp("chaos") / "store"
    store = _populate(path, n=3)
    _apply_corruptions(store.shard_path("k0"), operations)

    # Whatever a plain (lenient) load can salvage before repair...
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("ignore", StoreCorruptionWarning)
        damaged = ResultsStore(path)
        salvageable = {
            record.key: record.stats.to_json_dict() for record in damaged.records()
        }
        damaged.repair()

    # ...survives repair exactly, and the repaired store is clean.
    repaired = ResultsStore(path)
    report = repaired.verify()
    assert report.clean
    assert report.duplicate_keys == {}
    assert {
        record.key: record.stats.to_json_dict() for record in repaired.records()
    } == salvageable
    # Repairing a clean store is idempotent.
    assert repaired.repair().dropped_corrupt == 0
    assert ResultsStore(path).verify().clean
