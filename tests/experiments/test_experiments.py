"""End-to-end tests of the per-figure experiment modules (tiny settings).

These tests check that each experiment produces the right *structure* (rows,
columns, normalisations) and the coarse directional properties that do not
require long runs; the quantitative comparison against the paper lives in
EXPERIMENTS.md and the benchmark harness.
"""

import math

import pytest

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments import (
    broadcast_filter,
    directory_cost,
    fig2,
    fig3,
    fig6,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
)

#: Two representative workloads keep these tests fast.
TINY = ExperimentSettings(
    scale=4096, accesses_per_thread=200, warmup_accesses_per_thread=50,
    num_sockets=2, cores_per_socket=2,
)


@pytest.fixture(scope="module")
def context():
    ctx = ExperimentContext(TINY)
    # Restrict the workload list to keep module runtime in seconds.
    ctx.workloads = lambda: ["streamcluster", "facesim"]
    return ctx


def test_table1_reports_remote_fractions(context):
    measured = table1.run_table1(context)
    assert set(measured) == {"streamcluster", "facesim"}
    assert all(0.0 <= value <= 1.0 for value in measured.values())
    text = table1.format_table1(measured)
    assert "average" in text and "%" in text


def test_fig2_idealisations_structure(context):
    series = fig2.run_fig2(context)
    assert "geomean" in series
    for row in series.values():
        assert set(row) == set(fig2.IDEALISATIONS)
        assert all(value > 0 for value in row.values())
    # Removing latency/bandwidth constraints can only help (within noise).
    assert series["geomean"]["0_qpi_lat"] >= 0.95


def test_fig3_normalised_to_smallest_cache(context):
    series = fig3.run_fig3(context)
    for workload, row in series.items():
        assert set(row) == {"64MB", "256MB", "1GB"}
        # Larger caches cannot increase memory accesses (monotone, within noise).
        assert row["1GB"] <= row["64MB"] + 0.05
    assert "average" in series


def test_fig6_speedups_structure(context):
    series = fig6.run_fig6(context)
    assert "geomean" in series
    for row in series.values():
        assert set(row) == {"snoopy", "full-dir", "c3d", "c3d-full-dir"}
    # C3D must help on streamcluster even at tiny scale.
    assert series["streamcluster"]["c3d"] > 1.0


def test_fig8_memory_traffic_normalisation(context):
    series = fig8.run_fig8(context)
    for row in series.values():
        assert set(row) == {"reads", "writes", "total"}
        assert row["reads"] <= 1.05            # DRAM cache filters reads
        assert row["writes"] == pytest.approx(1.0, abs=0.35)  # write-through keeps writes
    assert "average" in series


def test_fig9_inter_socket_traffic(context):
    series = fig9.run_fig9(context)
    for row in series.values():
        assert set(row) == {"snoopy", "full-dir", "c3d", "c3d-full-dir"}
        # Snoopy broadcasts every miss, so it always produces the most traffic.
        assert row["snoopy"] >= row["c3d-full-dir"]
    # C3D generates less traffic than the baseline on average (paper: -35.9%).
    assert series["average"]["c3d"] < 1.1


def test_fig10_dram_latency_sensitivity(context):
    series = fig10.run_fig10(context, workloads=["streamcluster"], latencies=(30.0, 50.0))
    assert set(series) == {"30ns", "50ns"}
    for row in series.values():
        assert set(row) == set(fig10.SENSITIVITY_DESIGNS)
    # A faster DRAM cache can only help C3D.
    assert series["30ns"]["c3d"] >= series["50ns"]["c3d"] - 0.02


def test_fig11_inter_socket_latency_sensitivity(context):
    series = fig11.run_fig11(context, workloads=["streamcluster"], hop_latencies=(5.0, 30.0))
    assert set(series) == {"5ns", "30ns"}
    # C3D's advantage grows with the inter-socket latency (it removes that cost).
    assert series["30ns"]["c3d"] >= series["5ns"]["c3d"] - 0.02


def test_broadcast_filter_experiment(context):
    series = broadcast_filter.run_broadcast_filter(
        context, workloads=["streamcluster"], include_mcf=True
    )
    assert set(series) == {"streamcluster", "mcf"}
    for row in series.values():
        assert 0.0 <= row["broadcasts_elided"] <= 1.0
        assert not math.isnan(row["traffic_vs_plain_c3d"])
    # mcf is single threaded: essentially all broadcasts are elided.
    assert series["mcf"]["broadcasts_elided"] > 0.9


def test_directory_cost_matches_paper():
    table = directory_cost.storage_cost_table()
    assert table["256MB cache, 2x sparse"] == pytest.approx(32.0, rel=0.01)
    assert table["1GB cache, 2x sparse"] == pytest.approx(128.0, rel=0.01)
    occupancy = directory_cost.run_directory_occupancy(
        ExperimentSettings(scale=4096, accesses_per_thread=150,
                           warmup_accesses_per_thread=0, num_sockets=2, cores_per_socket=2),
        workload="streamcluster",
    )
    assert occupancy["full-dir"] > occupancy["c3d"]
