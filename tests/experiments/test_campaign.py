"""Tests for campaign specs, grid expansion and store-backed execution."""

import io
import json

import pytest

from repro.experiments.campaign import (
    CampaignError,
    CampaignSpec,
    campaign_status,
    merged_point_stats,
    run_campaign,
)
from repro.experiments.common import ExperimentContext, ExperimentSettings
from repro.experiments.runner import run_sweep, sweep_point_key
from repro.stats.store import MissingRunError, ResultsStore

TINY_SETTINGS = {
    "scale": 4096,
    "accesses_per_thread": 150,
    "warmup_accesses_per_thread": 0,
    "num_sockets": 2,
    "cores_per_socket": 1,
}

TINY_SPEC = {
    "name": "tiny",
    "settings": TINY_SETTINGS,
    "sweeps": [
        {
            "protocols": ["baseline", "c3d"],
            "workloads": ["facesim"],
            "topologies": [{"sockets": 2, "cores_per_socket": 1}],
        }
    ],
}


# ----------------------------------------------------------------------
# Parsing / validation
# ----------------------------------------------------------------------


def test_spec_round_trip_from_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(TINY_SPEC))
    spec = CampaignSpec.from_file(path)
    assert spec.name == "tiny"
    assert spec.settings.scale == 4096
    assert spec.engine == "compiled"
    assert len(spec.expand()) == 2


def test_spec_default_store_directory(tmp_path):
    spec = CampaignSpec.from_dict(TINY_SPEC)
    assert str(spec.store_directory()).endswith("results/tiny")
    assert spec.store_directory("elsewhere").name == "elsewhere"
    with_store = CampaignSpec.from_dict({**TINY_SPEC, "store": "custom/dir"})
    assert str(with_store.store_directory()) == "custom/dir"


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        ({"bogus": 1}, "unknown campaign field"),
        ({"name": ""}, "name"),
        ({"figures": ["fig99"]}, "unknown figure"),
        ({"settings": {"profile": "warp"}}, "unknown settings profile"),
        ({"settings": {"turbo": True}}, "unknown settings field"),
        ({"sweeps": [{"workloads": ["facesim"], "protocols": ["mesi"]}]},
         "unknown protocol"),
        ({"sweeps": [{"workloads": ["not-a-benchmark"]}]}, "unknown workload"),
        ({"sweeps": [{"protocols": ["c3d"]}]}, "at least one of"),
        ({"figures": [], "sweeps": []}, "nothing to run"),
        ({"engine": "compield"}, "unknown engine"),
        ({"sweeps": [{"workloads": ["facesim"],
                      "topologies": [{"sockets": "two"}]}]},
         "must be integers"),
    ],
)
def test_spec_validation_errors(mutation, fragment):
    payload = {**TINY_SPEC, **mutation}
    with pytest.raises(CampaignError, match=fragment):
        CampaignSpec.from_dict(payload)


def test_grid_expansion_order_and_sources():
    spec = CampaignSpec.from_dict({
        "name": "grid",
        "settings": TINY_SETTINGS,
        "sweeps": [{
            "protocols": ["baseline", "c3d"],
            "workloads": ["facesim", "streamcluster"],
            "scenarios": ["het-dual"],
            "topologies": [
                {"sockets": 2, "cores_per_socket": 1},
                {"sockets": 4, "cores_per_socket": 2},
            ],
        }],
    })
    points = spec.expand()
    # protocols x (workloads + scenarios) x topologies
    assert len(points) == 2 * 3 * 2
    # Protocol-major, source order preserved, topologies innermost.
    assert [p.protocol for p in points[:6]] == ["baseline"] * 6
    assert points[0].workload == "facesim" and points[0].num_sockets == 2
    assert points[1].num_sockets == 4 and points[1].cores_per_socket == 2
    scenario_points = [p for p in points if p.scenario is not None]
    assert len(scenario_points) == 4
    assert all(p.scenario == "het-dual" for p in scenario_points)
    # Grid scalars default to the campaign settings.
    assert all(p.scale == 4096 and p.accesses_per_thread == 150 for p in points)


def test_grid_clones_axis_expands_to_clone_points():
    spec = CampaignSpec.from_dict({
        "name": "clones",
        "settings": TINY_SETTINGS,
        "sweeps": [{
            "protocols": ["c3d"],
            "clones": ["work/clone.json"],
            "topologies": [{"sockets": 2, "cores_per_socket": 1}],
        }],
    })
    points = spec.expand()
    assert len(points) == 1
    assert points[0].clone == "work/clone.json"
    assert points[0].trace_dir is None and points[0].scenario is None


# ----------------------------------------------------------------------
# Execution: caching, resume, status
# ----------------------------------------------------------------------


def test_run_campaign_twice_is_pure_cache_hit(tmp_path):
    spec = CampaignSpec.from_dict(TINY_SPEC)
    store = ResultsStore(tmp_path / "store")
    first = run_campaign(spec, store, stream=io.StringIO())
    assert (first.executed_points, first.cached_points) == (2, 0)

    # A fresh store handle, as a separate invocation would build.
    store2 = ResultsStore(tmp_path / "store")
    second = run_campaign(spec, store2, stream=io.StringIO())
    assert (second.executed_points, second.cached_points) == (0, 2)
    assert "0 executed, 2 cached" in second.format()
    for one, two in zip(first.results, second.results):
        assert one.stats.to_json_dict() == two.stats.to_json_dict()


def test_run_sweep_store_results_preserve_input_order(tmp_path):
    spec = CampaignSpec.from_dict(TINY_SPEC)
    points = spec.expand()
    store = ResultsStore(tmp_path / "store")
    # Pre-complete only the *second* point, then run the full list.
    run_sweep(points[1:], store=store)
    results = run_sweep(points, store=store)
    assert [r.point for r in results] == points


def test_context_shares_runs_through_store(tmp_path):
    settings = ExperimentSettings(**TINY_SETTINGS)
    store = ResultsStore(tmp_path / "store")
    ExperimentContext(settings, store=store).run("facesim", "baseline")
    assert store.misses == 1 and store.hits == 0

    other = ExperimentContext(settings, store=ResultsStore(tmp_path / "store"))
    record = other.run("facesim", "baseline")
    assert other.store.hits == 1 and other.store.misses == 0
    assert record.stats.reads > 0


def test_offline_context_raises_for_missing_run(tmp_path):
    settings = ExperimentSettings(**TINY_SETTINGS)
    store = ResultsStore(tmp_path / "store")
    offline = ExperimentContext(settings, store=store, offline=True)
    with pytest.raises(MissingRunError):
        offline.run("facesim", "baseline")
    with pytest.raises(ValueError):
        ExperimentContext(settings, offline=True)   # offline needs a store


def test_campaign_status_counts_points(tmp_path):
    spec = CampaignSpec.from_dict(TINY_SPEC)
    store = ResultsStore(tmp_path / "store")
    status = campaign_status(spec, store)
    assert (status["points_done"], status["points_total"]) == (0, 2)

    run_sweep(spec.expand()[:1], store=store)
    status = campaign_status(spec, ResultsStore(tmp_path / "store"))
    assert (status["points_done"], status["points_total"]) == (1, 2)


def test_merged_point_stats_requires_complete_campaign(tmp_path):
    spec = CampaignSpec.from_dict(TINY_SPEC)
    store = ResultsStore(tmp_path / "store")
    with pytest.raises(MissingRunError):
        merged_point_stats(spec, store)
    run_campaign(spec, store, stream=io.StringIO())
    merged = merged_point_stats(spec, ResultsStore(tmp_path / "store"))
    assert merged.reads + merged.writes == sum(
        r.stats.reads + r.stats.writes
        for r in run_sweep(spec.expand(), store=store)
    )


def test_engine_is_part_of_the_store_key():
    spec = CampaignSpec.from_dict(TINY_SPEC)
    point = spec.expand()[0]
    assert sweep_point_key(point, "compiled") != sweep_point_key(point, "object")


def test_placeholder_workload_ignored_for_scenario_and_trace_points():
    from dataclasses import replace

    from repro.experiments.runner import SweepPoint

    scenario_point = SweepPoint(workload="facesim", scenario="het-dual")
    assert sweep_point_key(scenario_point) == sweep_point_key(
        replace(scenario_point, workload="mcf")
    )
    trace_point = SweepPoint(workload="facesim", trace_dir="traces/x")
    assert sweep_point_key(trace_point) == sweep_point_key(
        replace(trace_point, workload="mcf")
    )
    # For plain synthetic points the workload very much matters.
    plain = SweepPoint(workload="facesim")
    assert sweep_point_key(plain) != sweep_point_key(replace(plain, workload="mcf"))
