"""Tests for the parallel sweep runner and statistics merging."""

import pytest

from repro.experiments.runner import (
    SweepPoint,
    merge_stats,
    run_sweep,
)
from repro.stats.counters import LatencyAccumulator, SimulationStats

TINY = dict(
    scale=4096,
    accesses_per_thread=150,
    warmup_accesses_per_thread=0,
    num_sockets=2,
    cores_per_socket=1,
)


def test_run_sweep_sequential():
    points = [
        SweepPoint(workload="facesim", protocol="baseline", **TINY),
        SweepPoint(workload="facesim", protocol="c3d", **TINY),
    ]
    results = run_sweep(points)
    assert [r.point for r in results] == points
    for result in results:
        assert result.accesses_executed == 150 * 2
        assert result.stats.reads + result.stats.writes == result.accesses_executed


def test_run_sweep_parallel_matches_sequential():
    points = [
        SweepPoint(workload="facesim", protocol="baseline", **TINY),
        SweepPoint(workload="streamcluster", protocol="c3d", **TINY),
        SweepPoint(workload="facesim", protocol="c3d", **TINY),
    ]
    sequential = run_sweep(points)
    parallel = run_sweep(points, jobs=2)
    assert [r.point for r in parallel] == points
    for seq, par in zip(sequential, parallel):
        # Simulations are deterministic, so worker processes must reproduce
        # the in-process results exactly.
        assert seq.stats.as_dict() == par.stats.as_dict()
        assert seq.inter_socket_bytes == par.inter_socket_bytes
        assert seq.accesses_executed == par.accesses_executed


def test_merge_stats_sums_counters():
    points = [
        SweepPoint(workload="facesim", protocol="c3d", **TINY),
        SweepPoint(workload="streamcluster", protocol="c3d", **TINY),
    ]
    results = run_sweep(points)
    merged = merge_stats(results)
    for counter in ("reads", "writes", "l1_hits", "llc_misses", "memory_reads_local"):
        assert getattr(merged, counter) == sum(
            getattr(r.stats, counter) for r in results
        )
    assert merged.read_latency.count == sum(r.stats.read_latency.count for r in results)
    assert merged.read_latency.total == pytest.approx(
        sum(r.stats.read_latency.total for r in results)
    )
    assert merged.read_latency.maximum == max(
        r.stats.read_latency.maximum for r in results
    )


def test_simulation_stats_merge_core_finish_keeps_slowest():
    a = SimulationStats()
    b = SimulationStats()
    a.core_finish_ns = {0: 10.0, 1: 5.0}
    b.core_finish_ns = {1: 7.0, 2: 3.0}
    a.merge(b)
    assert a.core_finish_ns == {0: 10.0, 1: 7.0, 2: 3.0}


def test_latency_accumulator_merge():
    a = LatencyAccumulator()
    b = LatencyAccumulator()
    a.add(1.0)
    a.add(3.0)
    b.add(7.0)
    a.merge(b)
    assert a.count == 3
    assert a.total == pytest.approx(11.0)
    assert a.maximum == 7.0
