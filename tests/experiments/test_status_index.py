"""Regression: `repro campaign status` consults only the key index.

Counting completed points must never parse stored record bodies -- on a
store of millions of results that turns a cheap status probe into a full
load.  Pinned two ways: a record whose body is corrupt (but whose key
field survives) still counts as done, and a monkeypatched
``StoredRun.from_json_dict`` proves no record is materialised at all.
"""

import pytest

from repro.experiments.campaign import CampaignSpec, campaign_status
from repro.experiments.runner import sweep_point_key
from repro.stats import store as store_module
from repro.stats.counters import SimulationStats
from repro.stats.store import FailureRecord, ResultsStore, StoredRun

SPEC = CampaignSpec.from_dict({
    "name": "status-index",
    "settings": {
        "scale": 4096,
        "accesses_per_thread": 50,
        "num_sockets": 2,
        "cores_per_socket": 1,
    },
    "sweeps": [
        {
            "protocols": ["baseline", "c3d"],
            "workloads": ["facesim", "streamcluster"],
            "topologies": [{"sockets": 2, "cores_per_socket": 1}],
        }
    ],
})


def _fabricated(key: str) -> StoredRun:
    return StoredRun(
        key=key,
        params={"kind": "test"},
        stats=SimulationStats(),
        total_time_ns=1.0,
        inter_socket_bytes=0,
        accesses_executed=1,
    )


def test_status_counts_from_key_index_without_parsing_bodies(
    tmp_path, monkeypatch
):
    points = SPEC.expand()
    keys = [sweep_point_key(point, SPEC.engine) for point in points]
    store = ResultsStore(tmp_path / "store")
    store.put(_fabricated(keys[0]))
    store.put(_fabricated(keys[1]))

    # Corrupt one record's *body* while keeping its key field intact: the
    # shard index still lists the point as done; a full-record parse would
    # reject the line and report it pending.
    shard = store.shard_path(keys[0])
    text = shard.read_text(encoding="utf-8")
    assert '"accesses_executed":1' in text
    shard.write_text(
        text.replace('"accesses_executed":1', '"accesses_executed":<', 1),
        encoding="utf-8",
    )

    # One quarantined, not-yet-completed point.
    store.failure_log.append(
        FailureRecord(key=keys[2], params={}, attempts=3, error="boom")
    )

    def _no_parse(cls, payload):
        raise AssertionError("campaign_status parsed a stored record body")

    monkeypatch.setattr(
        store_module.StoredRun, "from_json_dict", classmethod(_no_parse)
    )

    status = campaign_status(SPEC, ResultsStore(tmp_path / "store"))
    assert status["points_done"] == 2            # corrupt body still indexed
    assert status["points_total"] == len(points)
    assert status["points_quarantined"] == 1
    assert status["figures"] == {}


def test_status_quarantine_clears_once_point_completes(tmp_path):
    points = SPEC.expand()
    keys = [sweep_point_key(point, SPEC.engine) for point in points]
    store = ResultsStore(tmp_path / "store")
    store.failure_log.append(
        FailureRecord(key=keys[0], params={}, attempts=3, error="boom")
    )
    assert campaign_status(SPEC, store)["points_quarantined"] == 1
    store.put(_fabricated(keys[0]))              # retry succeeded
    status = campaign_status(SPEC, ResultsStore(tmp_path / "store"))
    assert status["points_quarantined"] == 0
    assert status["points_done"] == 1


def test_corrupt_indexed_point_still_reruns(tmp_path):
    """The index view is optimistic; an actual get() of the corrupt record
    misses, so the point re-executes on the next run (nothing is lost)."""
    points = SPEC.expand()
    key = sweep_point_key(points[0], SPEC.engine)
    store = ResultsStore(tmp_path / "store")
    store.put(_fabricated(key))
    shard = store.shard_path(key)
    shard.write_text(
        shard.read_text(encoding="utf-8").replace(
            '"accesses_executed":1', '"accesses_executed":<', 1
        ),
        encoding="utf-8",
    )
    fresh = ResultsStore(tmp_path / "store")
    assert key in fresh.known_keys()
    with pytest.warns(store_module.StoreCorruptionWarning):
        assert fresh.get(key) is None
