"""Fault-tolerant sweep execution: retries, quarantine, timeout, fallback.

These tests drive the real per-point worker subprocesses through the
deterministic fault harness (repro.testing.faults) -- no test doubles on the
execution path (docs/robustness.md).
"""

import multiprocessing

import pytest

from repro.experiments.runner import (
    FailurePolicy,
    SweepPoint,
    fallback_engine,
    run_all_parallel,
    run_sweep,
    sweep_point_key,
)
from repro.stats.store import ResultsStore
from repro.testing import faults
from repro.testing.faults import FaultPlan

TINY = dict(
    scale=4096,
    accesses_per_thread=150,
    warmup_accesses_per_thread=0,
    num_sockets=2,
    cores_per_socket=1,
)

POINT = SweepPoint(workload="facesim", protocol="c3d", **TINY)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="these tests rely on fork-inherited monkeypatched state",
)


def test_failure_policy_validates_itself():
    with pytest.raises(ValueError, match="max_attempts"):
        FailurePolicy(max_attempts=0)
    with pytest.raises(ValueError, match="on_engine_error"):
        FailurePolicy(on_engine_error="retry")


def test_backoff_is_deterministic_and_bounded():
    policy = FailurePolicy(backoff_s=0.5, backoff_factor=2.0, jitter=0.1, seed=3)
    delays = [policy.backoff("some-key", attempt) for attempt in (1, 2, 3)]
    assert delays == [policy.backoff("some-key", attempt) for attempt in (1, 2, 3)]
    for attempt, delay in enumerate(delays, start=1):
        base = 0.5 * 2.0 ** (attempt - 1)
        assert base * 0.9 <= delay <= base * 1.1
    assert policy.backoff("other-key", 1) != delays[0]


def test_fallback_engine_is_deterministic_and_exact():
    from repro import engines

    name = fallback_engine()
    assert name is not None
    assert engines.get(name).deterministic
    assert not engines.get(name).supports_sampling


def test_transient_crash_recovers_via_retry(tmp_path):
    store = ResultsStore(tmp_path / "store")
    baseline = run_sweep([POINT])[0]
    with faults.injected(FaultPlan(crash_attempts=(1,))):
        results = run_sweep(
            [POINT],
            store=store,
            failure_policy=FailurePolicy(max_attempts=2, backoff_s=0.01),
        )
    result = results[0]
    assert result is not None
    assert result.attempts == 2
    # Recovery is bit-identical to a fault-free run.
    assert result.stats.as_dict() == baseline.stats.as_dict()
    stored = store.get(sweep_point_key(POINT))
    assert stored is not None and stored.attempts == 2
    assert len(store.failure_log) == 0


def test_poison_point_is_quarantined_and_rest_completes(tmp_path):
    store = ResultsStore(tmp_path / "store")
    good = SweepPoint(workload="facesim", protocol="baseline", **TINY)
    failures = []
    plan = FaultPlan(poison=({"workload": "facesim", "protocol": "c3d"},))
    with faults.injected(plan):
        results = run_sweep(
            [POINT, good],
            store=store,
            failure_policy=FailurePolicy(max_attempts=2, backoff_s=0.01),
            on_failure=failures.append,
        )
    assert results[0] is None                      # poison point: no result
    assert results[1] is not None                  # sibling still completed
    assert [f.attempts for f in failures] == [2]
    assert "poison" in failures[0].error
    # Quarantined to the failures.jsonl sidecar with the full context.
    records = store.failure_log.records()
    assert len(records) == 1
    assert records[0].key == sweep_point_key(POINT)
    assert records[0].params["workload"] == "facesim"
    assert records[0].attempts == 2
    assert "InjectedFault" in records[0].traceback
    # The store still holds the good point (and not the poison one).
    assert sweep_point_key(good) in store
    assert sweep_point_key(POINT) not in store


def test_hung_worker_is_killed_by_watchdog(tmp_path):
    store = ResultsStore(tmp_path / "store")
    plan = FaultPlan(hang_points=({"workload": "facesim"},), hang_s=30.0)
    failures = []
    with faults.injected(plan):
        results = run_sweep(
            [POINT],
            store=store,
            failure_policy=FailurePolicy(max_attempts=1, timeout_s=1.5),
            on_failure=failures.append,
        )
    assert results == [None]
    assert len(failures) == 1
    assert "timed out" in failures[0].error


def test_worker_death_propagates_without_policy():
    with faults.injected(FaultPlan(poison=({"workload": "facesim"},))):
        with pytest.raises(Exception, match="poison"):
            run_sweep(
                [POINT, SweepPoint(workload="streamcluster", protocol="c3d", **TINY)],
                jobs=2,
            )


def test_fallback_reruns_sampled_point_on_exact_engine(tmp_path):
    store = ResultsStore(tmp_path / "store")
    sampled_point = SweepPoint(
        workload="facesim", protocol="c3d",
        sample_plan="units=4,detail=50,warmup=25", **TINY,
    )
    # Every attempt on the original engine crashes; the policy then degrades
    # the point to the exact fallback engine, which runs fault-free because
    # fallback execution strips the pinned sample plan (different payload).
    plan = FaultPlan(poison=({"engine": "sampled"},))
    with faults.injected(plan):
        results = run_sweep(
            [sampled_point],
            store=store,
            engine="sampled",
            failure_policy=FailurePolicy(
                max_attempts=1, backoff_s=0.01, on_engine_error="fallback"
            ),
        )
    result = results[0]
    assert result is not None
    assert result.attempts == 2                    # 1 failed + 1 fallback
    assert result.engine_used == fallback_engine()
    # Stored under the ORIGINAL (sampled) key, stamped with the used engine.
    stored = store.get(sweep_point_key(sampled_point, "sampled"))
    assert stored is not None
    assert stored.engine_used == fallback_engine()
    assert stored.params["engine"] == "sampled"
    assert len(store.failure_log) == 0


def test_store_append_oserror_does_not_lose_the_result(tmp_path):
    store = ResultsStore(tmp_path / "store")
    plan = FaultPlan(store_error_rate=1.0)
    with faults.injected(plan):
        with pytest.warns(RuntimeWarning, match="append failed"):
            results = run_sweep(
                [POINT],
                store=store,
                failure_policy=FailurePolicy(max_attempts=1),
            )
    assert results[0] is not None                  # result survived
    assert sweep_point_key(POINT) not in ResultsStore(tmp_path / "store")


@fork_only
def test_run_all_parallel_keeps_partial_results(monkeypatch):
    import io

    from repro.experiments import runner as runner_module

    def good(_context):
        return {"value": 1}

    def bad(_context):
        raise RuntimeError("injected experiment failure")

    def fmt(result):
        return f"value={result['value']}"

    monkeypatch.setattr(
        runner_module,
        "_EXPERIMENTS",
        {"good_a": (good, fmt, False), "bad": (bad, fmt, False),
         "good_b": (good, fmt, False)},
    )
    stream = io.StringIO()
    reports = run_all_parallel(
        jobs=2, names=["good_a", "bad", "good_b"], stream=stream
    )
    # Completed reports survive the failing sibling, in registry order.
    assert list(reports) == ["good_a", "bad", "good_b"]
    assert reports["good_a"] == "value=1"
    assert reports["good_b"] == "value=1"
    assert reports["bad"].startswith("FAILED:")
    assert "injected experiment failure" in reports["bad"]
    out = stream.getvalue()
    assert "### bad  FAILED" in out
    assert "1/3 experiments failed: bad" in out
