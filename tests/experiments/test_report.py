"""Tests for ``repro report``: offline rendering against a golden table."""

import io
import json
from pathlib import Path

import pytest

from repro.experiments import table1
from repro.experiments.common import ExperimentContext, ExperimentSettings
from repro.experiments.report import generate_report, main as report_main
from repro.stats.store import ResultsStore

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "report_table1.md"

TINY = ExperimentSettings(
    scale=4096, accesses_per_thread=200, warmup_accesses_per_thread=50,
    num_sockets=2, cores_per_socket=2,
)
WORKLOADS = ["streamcluster", "facesim"]


@pytest.fixture()
def populated_store(tmp_path):
    """A store holding the table1 runs for the two tiny workloads."""
    store = ResultsStore(tmp_path / "store")
    context = ExperimentContext(TINY, store=store)
    context.workloads = lambda: list(WORKLOADS)
    table1.run_table1(context)
    return ResultsStore(tmp_path / "store")


def test_report_matches_golden_table(populated_store, tmp_path):
    out_dir = tmp_path / "report"
    entries = generate_report(
        populated_store, TINY, names=["table1"], workloads=WORKLOADS,
        out_dir=out_dir, stream=io.StringIO(),
    )
    entry = entries["table1"]
    assert entry.complete
    # Rendering is a pure store read: zero simulations happened.
    assert populated_store.misses == 0 and populated_store.hits == len(WORKLOADS)

    assert (out_dir / "table1.md").read_text() == GOLDEN.read_text()
    csv_lines = (out_dir / "table1.csv").read_text().splitlines()
    assert csv_lines[0] == "name,value"
    assert [line.split(",")[0] for line in csv_lines[1:]] == WORKLOADS
    # Full-precision CSV values, human-rounded Markdown.
    assert all(len(line.split(",")[1]) > 6 for line in csv_lines[1:])
    assert "Table I" in (out_dir / "table1.txt").read_text()
    assert "[table1](table1.md)" in (out_dir / "index.md").read_text()


def test_report_marks_missing_runs_incomplete(tmp_path):
    empty = ResultsStore(tmp_path / "empty")
    out_dir = tmp_path / "report"
    entries = generate_report(
        empty, TINY, names=["table1", "directory_cost"], workloads=WORKLOADS,
        out_dir=out_dir, stream=io.StringIO(),
    )
    assert not entries["table1"].complete
    assert "streamcluster" in entries["table1"].missing
    # directory_cost needs no simulation at all, so it renders regardless.
    assert entries["directory_cost"].complete
    assert "incomplete" in (out_dir / "index.md").read_text()


def test_report_rejects_unknown_experiment(tmp_path):
    with pytest.raises(ValueError, match="unknown experiment"):
        generate_report(
            ResultsStore(tmp_path / "s"), TINY, names=["fig99"],
            stream=io.StringIO(),
        )


def test_report_cli_with_campaign_spec(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "report-cli",
        "settings": {
            "scale": 4096, "accesses_per_thread": 200,
            "warmup_accesses_per_thread": 50,
            "num_sockets": 2, "cores_per_socket": 2,
        },
        "figures": ["directory_cost"],
        "store": str(tmp_path / "store"),
    }))
    # directory_cost simulates nothing, so the report completes on an
    # empty store -- this exercises the CLI path end to end.
    exit_code = report_main([
        "--campaign", str(spec_path),
        "--experiments", "directory_cost",
        "--out", str(tmp_path / "out"),
    ])
    assert exit_code == 0
    assert (tmp_path / "out" / "directory_cost.md").exists()
    assert "1/1 experiments rendered" in capsys.readouterr().out


def test_report_cli_requires_store(capsys):
    assert report_main([]) == 1
    assert "--store" in capsys.readouterr().err
