"""Tests for the experiment infrastructure (settings, context, memoisation)."""

import pytest

from repro.experiments.common import (
    DESIGNS,
    DRAM_CACHE_DESIGNS,
    ExperimentContext,
    ExperimentSettings,
    speedup,
)


TINY = ExperimentSettings(
    scale=4096, accesses_per_thread=150, warmup_accesses_per_thread=50,
    num_sockets=2, cores_per_socket=2,
)


def test_design_lists():
    assert DESIGNS[0] == "baseline"
    assert set(DRAM_CACHE_DESIGNS) == set(DESIGNS) - {"baseline"}


def test_settings_profiles():
    assert ExperimentSettings.quick().scale > ExperimentSettings.full().scale
    dual = ExperimentSettings().dual_socket()
    assert dual.num_sockets == 2 and dual.cores_per_socket == 16
    assert dual.total_cores == 32
    assert ExperimentSettings().trace_length == 3000 + 1000


def test_make_config_respects_settings():
    context = ExperimentContext(TINY)
    config = context.make_config("c3d")
    assert config.num_sockets == 2
    assert config.cores_per_socket == 2
    assert config.protocol == "c3d"
    # Scaled down from 16 MB but never below the 64 KB floor.
    assert 64 * 1024 <= config.llc.size_bytes < 16 * 1024 * 1024
    baseline = context.make_config("baseline")
    assert baseline.protocol == "baseline"


def test_make_workload_respects_settings():
    context = ExperimentContext(TINY)
    workload = context.make_workload("streamcluster")
    assert workload.num_threads == TINY.total_cores
    assert workload.accesses_per_thread == TINY.trace_length


def test_run_returns_record_and_memoises():
    context = ExperimentContext(TINY)
    first = context.run("streamcluster", "baseline")
    second = context.run("streamcluster", "baseline")
    assert first is second                       # memoised
    assert first.total_time_ns > 0
    assert first.stats.reads > 0
    assert first.protocol == "baseline"
    assert first.memory_accesses > 0


def test_run_with_adhoc_config_not_memoised_without_key():
    context = ExperimentContext(TINY)
    config = context.make_config("baseline")
    a = context.run("streamcluster", "baseline", config=config)
    b = context.run("streamcluster", "baseline", config=config)
    assert a is not b
    c = context.run("streamcluster", "baseline", config=config, cache_key_extra=("x",))
    d = context.run("streamcluster", "baseline", config=config, cache_key_extra=("x",))
    assert c is d


def test_speedup_definition():
    context = ExperimentContext(TINY)
    baseline = context.run("streamcluster", "baseline")
    c3d = context.run("streamcluster", "c3d")
    value = speedup(baseline, c3d)
    assert value == pytest.approx(baseline.total_time_ns / c3d.total_time_ns)


def test_run_designs_covers_requested_designs():
    context = ExperimentContext(TINY)
    records = context.run_designs("streamcluster", designs=("baseline", "c3d"))
    assert set(records) == {"baseline", "c3d"}
