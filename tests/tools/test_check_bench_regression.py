"""Unit tests for tools/check_bench_regression.py (the CI bench gate).

The tool is CI-critical but lives outside the package, so it is loaded
here the same way the workflows invoke it -- by file path.  The tests pin
the two gates (throughput measurements with a noise tolerance, speedup
ratios with hard floors), the ``--speedups-prefix`` filter, and the
``main()`` exit codes the CI jobs key off.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "check_bench_regression", REPO_ROOT / "tools" / "check_bench_regression.py"
)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _baseline(tolerance=0.7, speedups=None):
    base = {
        "tolerance": tolerance,
        "measurements": {
            "baseline/compiled": {"accesses_per_sec": 100_000.0},
            "c3d/compiled": {"accesses_per_sec": 50_000.0},
        },
    }
    if speedups is not None:
        base["speedups"] = speedups
    return base


def _record(**measurements):
    return {
        "timestamp": "2026-08-08T00:00:00Z",
        "git_sha": "deadbeef",
        "measurements": {
            key: {"accesses_per_sec": rate} for key, rate in measurements.items()
        },
    }


# ----------------------------------------------------------------------
# Throughput gate: floor = tolerance * baseline
# ----------------------------------------------------------------------


def test_check_passes_at_exactly_the_floor():
    record = _record(**{"baseline/compiled": 70_000.0, "c3d/compiled": 35_000.0})
    assert gate.check(record, _baseline()) == []


def test_check_fails_just_below_the_floor():
    record = _record(**{"baseline/compiled": 69_999.0, "c3d/compiled": 35_000.0})
    failures = gate.check(record, _baseline())
    assert len(failures) == 1
    assert failures[0].startswith("baseline/compiled:")


def test_check_reads_tolerance_from_the_baseline_file():
    record = _record(**{"baseline/compiled": 90_000.0, "c3d/compiled": 45_000.0})
    assert gate.check(record, _baseline(tolerance=0.9)) == []
    assert gate.check(record, _baseline(tolerance=0.95)) != []


def test_check_tolerance_argument_overrides_the_baseline_file():
    record = _record(**{"baseline/compiled": 50_000.0, "c3d/compiled": 25_000.0})
    assert gate.check(record, _baseline(tolerance=0.7), tolerance=0.5) == []


def test_check_flags_measurements_missing_from_the_record():
    record = _record(**{"baseline/compiled": 100_000.0})
    failures = gate.check(record, _baseline())
    assert failures == ["c3d/compiled: missing from the bench record"]


def test_check_ignores_record_keys_absent_from_the_baseline():
    """New measurement keys must not fail CI until a floor is committed."""
    record = _record(
        **{
            "baseline/compiled": 100_000.0,
            "c3d/compiled": 50_000.0,
            "baseline/vector": 1.0,  # no baseline entry -> ungated
        }
    )
    assert gate.check(record, _baseline()) == []


# ----------------------------------------------------------------------
# Speedup gate: hard floors, optional key-prefix filter
# ----------------------------------------------------------------------

_FLOORS = {
    "sampled_speedup_baseline": 1.15,
    "sampled_speedup_c3d": 1.15,
    "vector_speedup_baseline": 5.0,
    "vector_speedup_c3d": 5.0,
}


def _speedup_record(**ratios):
    return {"git_sha": "deadbeef", **ratios}


def test_speedups_pass_at_and_above_the_floor():
    record = _speedup_record(
        sampled_speedup_baseline=1.15,
        sampled_speedup_c3d=2.0,
        vector_speedup_baseline=5.0,
        vector_speedup_c3d=6.1,
    )
    assert gate.check_speedups(record, _baseline(speedups=_FLOORS)) == []


def test_speedups_fail_below_the_floor():
    record = _speedup_record(
        sampled_speedup_baseline=1.14,
        sampled_speedup_c3d=1.2,
        vector_speedup_baseline=4.99,
        vector_speedup_c3d=6.0,
    )
    failures = gate.check_speedups(record, _baseline(speedups=_FLOORS))
    assert len(failures) == 2
    assert any(f.startswith("sampled_speedup_baseline:") for f in failures)
    assert any(f.startswith("vector_speedup_baseline:") for f in failures)


def test_speedups_prefix_gates_only_one_engine_family():
    """The vector CI job must not fail on absent sampled_* ratios."""
    record = _speedup_record(vector_speedup_baseline=7.1, vector_speedup_c3d=6.1)
    baseline = _baseline(speedups=_FLOORS)
    assert gate.check_speedups(record, baseline, prefix="vector_") == []
    # Without the filter, the missing sampled_* ratios fail the gate.
    failures = gate.check_speedups(record, baseline)
    assert len(failures) == 2
    assert all("missing from the bench record" in f for f in failures)


def test_speedups_prefix_matching_nothing_is_a_failure():
    """A typo'd prefix must fail loudly, not gate an empty set."""
    record = _speedup_record(vector_speedup_baseline=7.1)
    failures = gate.check_speedups(
        record, _baseline(speedups=_FLOORS), prefix="vectr_"
    )
    assert failures == ["baseline has no 'speedups' entries matching prefix 'vectr_'"]


def test_speedups_without_baseline_section_is_a_failure():
    failures = gate.check_speedups(_speedup_record(), _baseline())
    assert failures == ["baseline has no 'speedups' section to gate against"]


# ----------------------------------------------------------------------
# Record loading
# ----------------------------------------------------------------------


def test_latest_record_takes_the_last_history_entry(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps([{"git_sha": "old"}, {"git_sha": "new"}]))
    assert gate.latest_record(path)["git_sha"] == "new"


def test_latest_record_accepts_a_bare_record(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"git_sha": "solo"}))
    assert gate.latest_record(path)["git_sha"] == "solo"


def test_latest_record_rejects_an_empty_history(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("[]")
    with pytest.raises(ValueError, match="empty history"):
        gate.latest_record(path)


# ----------------------------------------------------------------------
# Explicit record selection (--record-index / --timestamp)
# ----------------------------------------------------------------------


def _history(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(
        json.dumps(
            [
                {"git_sha": "a", "timestamp": "t0"},
                {"git_sha": "b", "timestamp": "t1"},
                {"git_sha": "c", "timestamp": "t1"},
            ]
        )
    )
    return path


def test_select_record_by_positive_and_negative_index(tmp_path):
    path = _history(tmp_path)
    assert gate.select_record(path, index=0)["git_sha"] == "a"
    assert gate.select_record(path, index=-1)["git_sha"] == "c"
    assert gate.select_record(path, index=-2)["git_sha"] == "b"


def test_select_record_index_out_of_range(tmp_path):
    with pytest.raises(ValueError, match="out of range"):
        gate.select_record(_history(tmp_path), index=7)


def test_select_record_by_timestamp_takes_the_last_match(tmp_path):
    """A shared history may hold several records from one CI run; the last
    one with the requested stamp is the record that run finished with."""
    record = gate.select_record(_history(tmp_path), timestamp="t1")
    assert record["git_sha"] == "c"


def test_select_record_unknown_timestamp_lists_available(tmp_path):
    with pytest.raises(ValueError, match=r"no record with timestamp 't9'"):
        gate.select_record(_history(tmp_path), timestamp="t9")


def test_select_record_rejects_both_selectors(tmp_path):
    with pytest.raises(ValueError, match="not both"):
        gate.select_record(_history(tmp_path), index=0, timestamp="t0")


def test_select_record_bare_record_ignores_selectors(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"git_sha": "solo"}))
    assert gate.select_record(path, index=5)["git_sha"] == "solo"
    assert gate.select_record(path, timestamp="t9")["git_sha"] == "solo"


# ----------------------------------------------------------------------
# main(): the exit codes the CI jobs key off
# ----------------------------------------------------------------------


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_main_exits_zero_on_a_clean_record(tmp_path, capsys):
    record = _write(
        tmp_path, "bench.json",
        [_record(**{"baseline/compiled": 100_000.0, "c3d/compiled": 50_000.0})],
    )
    baseline = _write(tmp_path, "baseline.json", _baseline())
    assert gate.main([record, "--baseline", baseline]) == 0
    assert "gate passed" in capsys.readouterr().out


def test_main_exits_one_on_a_regression(tmp_path, capsys):
    record = _write(
        tmp_path, "bench.json",
        [_record(**{"baseline/compiled": 1.0, "c3d/compiled": 50_000.0})],
    )
    baseline = _write(tmp_path, "baseline.json", _baseline())
    assert gate.main([record, "--baseline", baseline]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_main_speedups_prefix_implies_the_speedups_gate(tmp_path):
    """--speedups-prefix alone must select the speedup gate (as CI relies on)."""
    record = _write(
        tmp_path, "bench.json", [_speedup_record(vector_speedup_baseline=7.1)]
    )
    baseline = _write(
        tmp_path, "baseline.json",
        _baseline(speedups={"vector_speedup_baseline": 5.0}),
    )
    assert (
        gate.main([record, "--baseline", baseline, "--speedups-prefix", "vector_"])
        == 0
    )
    # Same invocation without the prefix flag gates the measurements
    # instead, which this record lacks entirely.
    assert gate.main([record, "--baseline", baseline]) == 1


def test_main_speedup_regression_exits_one(tmp_path):
    record = _write(
        tmp_path, "bench.json", [_speedup_record(vector_speedup_baseline=4.2)]
    )
    baseline = _write(
        tmp_path, "baseline.json",
        _baseline(speedups={"vector_speedup_baseline": 5.0}),
    )
    assert (
        gate.main([record, "--baseline", baseline, "--speedups", "--speedups-prefix",
                   "vector_"])
        == 1
    )


def test_main_record_index_gates_the_pinned_record(tmp_path):
    """The parallel-bench CI job pins its own appended record with
    --record-index rather than trusting 'latest' in a shared history."""
    good = _record(**{"baseline/compiled": 100_000.0, "c3d/compiled": 50_000.0})
    bad = _record(**{"baseline/compiled": 1.0, "c3d/compiled": 1.0})
    record = _write(tmp_path, "bench.json", [good, bad])
    baseline = _write(tmp_path, "baseline.json", _baseline())
    assert gate.main([record, "--baseline", baseline, "--record-index", "0"]) == 0
    assert gate.main([record, "--baseline", baseline, "--record-index", "-1"]) == 1


def test_main_bad_selector_exits_two(tmp_path, capsys):
    record = _write(tmp_path, "bench.json", [_record()])
    baseline = _write(tmp_path, "baseline.json", _baseline())
    assert gate.main([record, "--baseline", baseline, "--record-index", "9"]) == 2
    assert "out of range" in capsys.readouterr().err


def test_main_timestamp_selects_the_matching_record(tmp_path):
    good = _record(**{"baseline/compiled": 100_000.0, "c3d/compiled": 50_000.0})
    bad = dict(_record(**{"baseline/compiled": 1.0}), timestamp="later")
    record = _write(tmp_path, "bench.json", [good, bad])
    baseline = _write(tmp_path, "baseline.json", _baseline())
    args = [record, "--baseline", baseline, "--timestamp", "2026-08-08T00:00:00Z"]
    assert gate.main(args) == 0
    assert gate.main([record, "--baseline", baseline, "--timestamp", "nope"]) == 2


def test_main_rejects_both_selectors_at_the_parser(tmp_path, capsys):
    record = _write(tmp_path, "bench.json", [_record()])
    with pytest.raises(SystemExit):
        gate.main([record, "--record-index", "0", "--timestamp", "t0"])
    assert "not allowed with" in capsys.readouterr().err
