"""Tests for the direct-mapped DRAM cache (clean and dirty modes)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.dram_cache import DRAMCache
from repro.caches.miss_predictor import RegionMissPredictor


def make_cache(size=1024, clean=True, predictor=False):
    mp = RegionMissPredictor(entries=16, region_size=256) if predictor else None
    return DRAMCache(size, clean=clean, miss_predictor=mp)


def test_direct_mapped_geometry():
    cache = make_cache(size=1024)
    assert cache.num_sets == 16
    assert cache.set_index(0) == 0
    assert cache.set_index(16) == 0


def test_probe_miss_then_hit():
    cache = make_cache()
    probe = cache.probe(3)
    assert not probe.hit
    cache.insert(3)
    probe = cache.probe(3)
    assert probe.hit and probe.array_accessed


def test_direct_mapped_conflict_eviction():
    cache = make_cache(size=1024)
    cache.insert(0)
    victim = cache.insert(16)  # same set
    assert victim is not None and victim.block == 0
    assert not cache.contains(0)
    assert cache.contains(16)


def test_clean_mode_never_stores_dirty():
    cache = make_cache(clean=True)
    cache.insert(5, dirty=True)
    assert not cache.peek(5).dirty
    # Clean victims never require a write-back.
    victim = cache.insert(5 + cache.num_sets, dirty=True)
    assert victim is not None and not victim.needs_writeback


def test_dirty_mode_stores_and_reports_dirty_victims():
    cache = make_cache(clean=False)
    cache.insert(5, dirty=True)
    assert cache.peek(5).dirty
    victim = cache.insert(5 + cache.num_sets)
    assert victim.needs_writeback
    assert cache.dirty_evictions == 1


def test_reinsert_same_block_keeps_dirty_bit():
    cache = make_cache(clean=False)
    cache.insert(5, dirty=True)
    cache.insert(5, dirty=False)
    assert cache.peek(5).dirty


def test_invalidate():
    cache = make_cache()
    cache.insert(9)
    line = cache.invalidate(9)
    assert line is not None
    assert not cache.contains(9)
    assert cache.invalidations == 1
    assert cache.invalidate(9) is None


def test_mark_clean():
    cache = make_cache(clean=False)
    cache.insert(4, dirty=True)
    cache.mark_clean(4)
    assert not cache.peek(4).dirty


def test_predictor_skips_array_on_confident_miss():
    cache = make_cache(predictor=True)
    probe = cache.probe(7)
    assert not probe.hit and not probe.array_accessed
    assert cache.predictor_bypasses == 1


def test_predictor_mispredict_still_finds_resident_block():
    # Thrash the predictor's region table so it forgets a resident block.
    predictor = RegionMissPredictor(entries=1, region_size=64)
    cache = DRAMCache(64 * 64, miss_predictor=predictor)
    cache.insert(0)
    cache.insert(50)   # displaces region 0 from the 1-entry table
    probe = cache.probe(0)
    assert probe.hit
    assert probe.array_accessed


def test_hit_rate_and_occupancy():
    cache = make_cache()
    cache.insert(1)
    cache.probe(1)
    cache.probe(2)
    assert cache.hit_rate() == pytest.approx(0.5)
    assert cache.occupancy() == 1
    assert list(cache.resident_blocks()) == [1]
    cache.clear()
    assert cache.occupancy() == 0


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        DRAMCache(0)
    with pytest.raises(ValueError):
        DRAMCache(32, block_size=64)


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=300),
       st.booleans())
def test_clean_cache_invariant_holds_under_any_insertion_sequence(blocks, dirty):
    cache = DRAMCache(1024, clean=True)
    for block in blocks:
        cache.insert(block, dirty=dirty)
    assert all(not cache.peek(b).dirty for b in cache.resident_blocks())
    assert cache.occupancy() <= cache.num_sets


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 200), st.booleans()), min_size=1, max_size=200))
def test_predictor_and_cache_agree_on_absence(ops):
    """If the predictor says "absent" for an untracked/cleared block and the
    table has not displaced the region, the block really is absent."""
    predictor = RegionMissPredictor(entries=1024, region_size=256)
    cache = DRAMCache(4096, miss_predictor=predictor)
    for block, invalidate in ops:
        if invalidate:
            cache.invalidate(block)
        else:
            cache.insert(block)
    for block, _ in ops:
        if predictor.predicts_miss(block):
            assert not cache.contains(block)
