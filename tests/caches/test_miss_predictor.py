"""Tests for the region-based (MissMap-style) miss predictor."""

from hypothesis import given, settings, strategies as st

from repro.caches.miss_predictor import RegionMissPredictor


def make_predictor(entries=8, region_size=256):
    # region_size=256 -> 4 blocks per region with 64-byte blocks.
    return RegionMissPredictor(entries=entries, region_size=region_size)


def test_untracked_region_predicts_miss():
    predictor = make_predictor()
    assert predictor.predicts_miss(0)
    assert predictor.untracked_lookups == 1


def test_inserted_block_predicts_present():
    predictor = make_predictor()
    predictor.note_insert(5)
    assert not predictor.predicts_miss(5)


def test_sibling_block_in_same_region_still_predicts_miss():
    predictor = make_predictor()
    predictor.note_insert(4)       # region 1 (blocks 4-7)
    assert not predictor.predicts_miss(4)
    assert predictor.predicts_miss(5)


def test_evicted_block_predicts_miss_again():
    predictor = make_predictor()
    predictor.note_insert(5)
    predictor.note_evict(5)
    assert predictor.predicts_miss(5)


def test_evict_of_untracked_block_is_noop():
    predictor = make_predictor()
    predictor.note_evict(99)
    assert predictor.tracked_regions() == 0


def test_region_displacement_is_lru():
    predictor = make_predictor(entries=2)
    predictor.note_insert(0)    # region 0
    predictor.note_insert(4)    # region 1
    predictor.predicts_miss(1)  # touches region 0 (makes region 1 the LRU)
    predictor.note_insert(8)    # region 2 displaces region 1
    assert predictor.region_displacements == 1
    # Region 1's presence information is lost: block 4 now predicts miss.
    assert predictor.predicts_miss(4)
    # Region 0 survived.
    assert not predictor.predicts_miss(0)


def test_region_geometry():
    predictor = make_predictor(region_size=256)
    assert predictor.region_of_block(0) == 0
    assert predictor.region_of_block(3) == 0
    assert predictor.region_of_block(4) == 1


def test_counters_and_coverage():
    predictor = make_predictor()
    predictor.note_insert(0)
    predictor.predicts_miss(0)
    predictor.predicts_miss(100)
    assert predictor.lookups == 2
    assert predictor.predicted_present == 1
    assert predictor.predicted_miss == 1
    assert predictor.tracked_blocks() == 1
    assert 0.0 <= predictor.coverage() <= 1.0


def test_invalid_parameters():
    import pytest

    with pytest.raises(ValueError):
        RegionMissPredictor(entries=0)
    with pytest.raises(ValueError):
        RegionMissPredictor(region_size=100)


@settings(max_examples=60)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=200))
def test_predictor_tracks_residency_exactly_without_displacement(ops):
    """With a table large enough to never displace, the predictor's answer is
    exactly the set of currently 'inserted' blocks."""
    predictor = RegionMissPredictor(entries=64, region_size=256)
    resident = set()
    for block, remove in ops:
        if remove:
            predictor.note_evict(block)
            resident.discard(block)
        else:
            predictor.note_insert(block)
            resident.add(block)
    for block in range(64):
        assert predictor.predicts_miss(block) == (block not in resident)
