"""Tests for the cache replacement policies."""

import pytest

from repro.caches.block import CacheLine
from repro.caches.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_replacement_policy,
)


def lines(n):
    return [CacheLine(block=i) for i in range(n)]


def test_lru_victim_is_least_recently_used():
    policy = LRUPolicy()
    candidates = lines(3)
    for line in candidates:
        policy.on_insert(line)
    policy.touch(candidates[0])
    victim = policy.choose_victim(candidates)
    assert victim is candidates[1]


def test_fifo_ignores_touches():
    policy = FIFOPolicy()
    candidates = lines(3)
    for line in candidates:
        policy.on_insert(line)
    policy.touch(candidates[0])   # should not change insertion order
    victim = policy.choose_victim(candidates)
    assert victim is candidates[0]


def test_random_is_deterministic_with_seed():
    a = RandomPolicy(seed=7)
    b = RandomPolicy(seed=7)
    candidates = lines(8)
    picks_a = [a.choose_victim(candidates).block for _ in range(10)]
    picks_b = [b.choose_victim(candidates).block for _ in range(10)]
    assert picks_a == picks_b


def test_random_victim_is_a_candidate():
    policy = RandomPolicy(seed=1)
    candidates = lines(4)
    assert policy.choose_victim(candidates) in candidates


def test_factory():
    assert isinstance(make_replacement_policy("lru"), LRUPolicy)
    assert isinstance(make_replacement_policy("FIFO"), FIFOPolicy)
    assert isinstance(make_replacement_policy("random", seed=3), RandomPolicy)
    with pytest.raises(ValueError):
        make_replacement_policy("plru")
