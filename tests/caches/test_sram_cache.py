"""Tests for the set-associative SRAM cache model (L1 / LLC)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.block import CacheBlockState
from repro.caches.sram_cache import SetAssociativeCache


def make_cache(size=1024, ways=2, name="test"):
    return SetAssociativeCache(size, ways, block_size=64, name=name)


def test_geometry():
    cache = make_cache(size=1024, ways=2)
    assert cache.num_sets == 8
    assert cache.set_index(0) == 0
    assert cache.set_index(8) == 0
    assert cache.set_index(9) == 1


def test_miss_then_hit():
    cache = make_cache()
    assert cache.lookup(5) is None
    cache.insert(5)
    line = cache.lookup(5)
    assert line is not None and line.block == 5
    assert cache.hits == 1 and cache.misses == 1


def test_insert_existing_upgrades_state_without_victim():
    cache = make_cache()
    cache.insert(5, CacheBlockState.SHARED)
    victim = cache.insert(5, CacheBlockState.MODIFIED, dirty=True)
    assert victim is None
    line = cache.peek(5)
    assert line.state is CacheBlockState.MODIFIED and line.dirty


def test_lru_eviction_order():
    cache = make_cache(size=256, ways=2)  # 2 sets, 2 ways
    # Set 0 holds blocks 0 and 2; touching 0 makes 2 the LRU victim.
    cache.insert(0)
    cache.insert(2)
    cache.lookup(0)
    victim = cache.insert(4)  # maps to set 0
    assert victim is not None and victim.block == 2


def test_dirty_eviction_reported():
    cache = make_cache(size=256, ways=2)
    cache.insert(0, CacheBlockState.MODIFIED, dirty=True)
    cache.insert(2)
    cache.lookup(2)
    victim = cache.insert(4)
    assert victim.block == 0
    assert victim.needs_writeback
    assert cache.dirty_evictions == 1


def test_invalidate_removes_line():
    cache = make_cache()
    cache.insert(7)
    line = cache.invalidate(7)
    assert line is not None
    assert not cache.contains(7)
    assert cache.invalidations == 1
    assert cache.invalidate(7) is None


def test_downgrade_clears_modified_and_dirty():
    cache = make_cache()
    cache.insert(3, CacheBlockState.MODIFIED, dirty=True)
    line = cache.downgrade(3)
    assert line.state is CacheBlockState.SHARED
    assert not line.dirty


def test_set_state_requires_residency():
    cache = make_cache()
    with pytest.raises(KeyError):
        cache.set_state(1, CacheBlockState.MODIFIED)


def test_occupancy_and_resident_blocks():
    cache = make_cache()
    for block in range(5):
        cache.insert(block)
    assert cache.occupancy() == 5
    assert set(cache.resident_blocks()) == set(range(5))
    cache.clear()
    assert cache.occupancy() == 0


def test_hit_rate():
    cache = make_cache()
    assert cache.hit_rate() == 0.0
    cache.insert(0)
    cache.lookup(0)
    cache.lookup(1)
    assert cache.hit_rate() == pytest.approx(0.5)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        SetAssociativeCache(0, 1)
    with pytest.raises(ValueError):
        SetAssociativeCache(32, 1, block_size=64)
    with pytest.raises(ValueError):
        SetAssociativeCache(192, 4, block_size=64)  # 3 blocks not divisible by 4 ways


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
def test_occupancy_never_exceeds_capacity(blocks):
    cache = SetAssociativeCache(1024, 2, block_size=64)
    capacity = 1024 // 64
    for block in blocks:
        cache.insert(block)
        assert cache.occupancy() <= capacity
    # Every set respects its associativity.
    for block in blocks:
        resident_in_set = [
            b for b in cache.resident_blocks() if cache.set_index(b) == cache.set_index(block)
        ]
        assert len(resident_in_set) <= 2


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
def test_most_recently_inserted_block_is_always_resident(blocks):
    cache = SetAssociativeCache(512, 2, block_size=64)
    for block in blocks:
        cache.insert(block)
        assert cache.contains(block)
