"""Tests for the scenario composition layer."""

import json

import pytest

from repro.workloads.registry import make_workload
from repro.workloads.scenario import (
    ADDRESS_STRIDE,
    SCENARIO_SPECS,
    Scenario,
    ScenarioEntry,
    build_scenario_workload,
    get_scenario,
    load_scenario,
    scenario_from_dict,
    scenario_names,
)
from repro.workloads.trace_io import record_workload


def build(name, **kwargs):
    defaults = dict(num_sockets=4, cores_per_socket=2, scale=2048,
                    accesses_per_thread=60)
    defaults.update(kwargs)
    return build_scenario_workload(name, **defaults)


# ----------------------------------------------------------------------
# Entry / scenario validation
# ----------------------------------------------------------------------


def test_entry_requires_exactly_one_source():
    match = "exactly one of 'workload', 'trace_dir' or 'clone'"
    with pytest.raises(ValueError, match=match):
        ScenarioEntry(cores=(0,))
    with pytest.raises(ValueError, match=match):
        ScenarioEntry(workload="facesim", trace_dir="x", cores=(0,))
    with pytest.raises(ValueError, match=match):
        ScenarioEntry(trace_dir="x", clone="c.json", cores=(0,))


def test_entry_requires_exactly_one_core_group():
    with pytest.raises(ValueError, match="exactly one of 'cores' or 'sockets'"):
        ScenarioEntry(workload="facesim")
    with pytest.raises(ValueError, match="exactly one of 'cores' or 'sockets'"):
        ScenarioEntry(workload="facesim", cores=(0,), sockets=(0,))


def test_entry_rejects_bad_gap_scale():
    with pytest.raises(ValueError, match="gap_scale"):
        ScenarioEntry(workload="facesim", cores=(0,), gap_scale=0)


def test_scenario_needs_entries():
    with pytest.raises(ValueError, match="no entries"):
        Scenario(name="empty", entries=())


def test_core_out_of_range():
    scenario = Scenario(
        name="s", entries=(ScenarioEntry(workload="facesim", cores=(99,)),)
    )
    with pytest.raises(ValueError, match="core 99 out of range"):
        scenario.resolve_cores(num_sockets=4, cores_per_socket=2)


def test_socket_out_of_range():
    scenario = Scenario(
        name="s", entries=(ScenarioEntry(workload="facesim", sockets=(4,)),)
    )
    with pytest.raises(ValueError, match="socket 4 out of range"):
        scenario.resolve_cores(num_sockets=4, cores_per_socket=2)


def test_overlapping_cores_rejected():
    scenario = Scenario(
        name="s",
        entries=(
            ScenarioEntry(workload="facesim", sockets=(0,)),
            ScenarioEntry(workload="canneal", cores=(1,)),
        ),
    )
    with pytest.raises(ValueError, match="core 1 claimed by both entry 0 and entry 1"):
        scenario.resolve_cores(num_sockets=4, cores_per_socket=2)


def test_misaligned_base_offset_rejected():
    scenario = Scenario(
        name="s",
        entries=(ScenarioEntry(workload="facesim", sockets=(0,), base_offset=100),),
    )
    with pytest.raises(ValueError, match="multiple of the page size"):
        scenario.build(num_sockets=4, cores_per_socket=2)


def test_trace_entry_with_too_few_threads(tmp_path):
    wl = make_workload("facesim", scale=2048, accesses_per_thread=30, num_threads=1)
    directory = record_workload(wl, tmp_path / "one", trace_format="csv")
    scenario = Scenario(
        name="s",
        entries=(ScenarioEntry(trace_dir=str(directory), cores=(0, 1)),),
    )
    with pytest.raises(ValueError, match="records only 1 threads"):
        scenario.build(num_sockets=4, cores_per_socket=2)


# ----------------------------------------------------------------------
# Composition semantics
# ----------------------------------------------------------------------


def test_single_entry_covering_all_cores_equals_plain_workload():
    """One entry on every socket with offset 0 reproduces make_workload."""
    scenario = Scenario(
        name="plain",
        entries=(
            ScenarioEntry(workload="facesim", sockets=(0, 1, 2, 3), base_offset=0),
        ),
    )
    composed = build(scenario)
    plain = make_workload("facesim", scale=2048, accesses_per_thread=60, num_threads=8)
    for thread_id in range(8):
        assert list(composed.stream(thread_id)) == list(plain.stream(thread_id))
    assert composed.memory_regions() == plain.memory_regions()
    assert composed.serial_init_pages() == plain.serial_init_pages()


def test_stream_and_compiled_trace_are_bit_identical():
    composed = build("het-quad")
    for thread_id in range(composed.num_threads):
        stream = list(composed.stream(thread_id))
        compiled = composed.compiled_trace(thread_id)
        assert compiled.addrs == [a.addr for a in stream]
        assert compiled.writes == [a.is_write for a in stream]
        assert compiled.gaps == [a.gap for a in stream]


def test_entries_are_address_isolated():
    composed = build("het-quad")
    pages_per_entry = []
    for assignment in composed.assignments:
        pages = set()
        for core in assignment.cores:
            pages.update(a.addr // 4096 for a in composed.stream(core))
        pages_per_entry.append(pages)
    for i in range(len(pages_per_entry)):
        for j in range(i + 1, len(pages_per_entry)):
            assert not (pages_per_entry[i] & pages_per_entry[j])


def test_address_isolation_uses_stride():
    composed = build("het-quad")
    offsets = [assignment.offset for assignment in composed.assignments]
    assert offsets == [0, ADDRESS_STRIDE, 2 * ADDRESS_STRIDE, 3 * ADDRESS_STRIDE]


def test_gap_scale_skews_rates():
    composed = build("rate-skew-quad")
    fast = list(composed.stream(0))      # socket 0: gap_scale 1
    slow = list(composed.stream(2))      # socket 1: gap_scale 4
    assert all(access.gap % 4 == 0 for access in slow)
    assert sum(a.gap for a in slow) > sum(a.gap for a in fast)


def test_uncovered_cores_get_empty_streams():
    scenario = Scenario(
        name="sparse", entries=(ScenarioEntry(workload="facesim", cores=(5,)),)
    )
    composed = build(scenario)
    assert composed.num_threads == 6
    assert list(composed.stream(0)) == []
    assert composed.compiled_trace(0).length == 0
    assert len(list(composed.stream(5))) == 60


def test_owner_threads_remapped_to_global_cores():
    composed = build("het-quad")
    owners = {
        region["owner_thread"]
        for region in composed.memory_regions()
        if region["owner_thread"] is not None
    }
    assert owners == set(range(8))  # all global core ids, not per-entry 0..1


def test_mixed_trace_and_synthetic_entries(tmp_path):
    wl = make_workload("streamcluster", scale=2048, accesses_per_thread=40, num_threads=2)
    directory = record_workload(wl, tmp_path / "sc", trace_format="bin")
    scenario = Scenario(
        name="mixed",
        entries=(
            ScenarioEntry(workload="facesim", sockets=(0,)),
            ScenarioEntry(trace_dir=str(directory), cores=(2, 3)),
        ),
    )
    composed = build(scenario)
    # The trace entry is rebased by one stride relative to the recording.
    recorded = [a.addr for a in wl.stream(0)]
    replayed = [a.addr for a in composed.stream(2)]
    assert replayed == [addr + ADDRESS_STRIDE for addr in recorded]


# ----------------------------------------------------------------------
# Registry + JSON loading
# ----------------------------------------------------------------------


def test_builtin_registry():
    assert scenario_names() == list(SCENARIO_SPECS)
    assert get_scenario("het-quad") is SCENARIO_SPECS["het-quad"]
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_builtin_scenarios_build_and_run():
    for name in ("het-quad", "rate-skew-quad", "multiprogram-mcf-quad"):
        composed = build(name)
        assert composed.num_threads == 8
    dual = build_scenario_workload(
        "het-dual", num_sockets=2, cores_per_socket=2, scale=2048,
        accesses_per_thread=30,
    )
    assert dual.num_threads == 4


def test_load_scenario_json(tmp_path):
    path = tmp_path / "mix.json"
    path.write_text(json.dumps({
        "name": "from-json",
        "entries": [
            {"workload": "facesim", "sockets": [0]},
            {"workload": "canneal", "cores": [4, 5], "gap_scale": 2},
        ],
    }))
    scenario = load_scenario(path)
    assert scenario.name == "from-json"
    assert scenario.entries[1].gap_scale == 2
    assert get_scenario(str(path)).name == "from-json"  # path fallback


def test_scenario_json_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown scenario entry keys"):
        scenario_from_dict(
            {"entries": [{"workload": "facesim", "sockets": [0], "speed": 2}]}
        )


def test_scenario_json_requires_entries(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{}")
    with pytest.raises(ValueError, match="'entries' list"):
        load_scenario(path)
    path.write_text("{not json")
    with pytest.raises(ValueError, match="invalid scenario JSON"):
        load_scenario(path)


def test_trace_entry_on_fewer_cores_than_recorded_threads(tmp_path):
    """Regions owned by unassigned recorded threads are dropped, not remapped."""
    wl = make_workload("facesim", scale=2048, accesses_per_thread=30, num_threads=4)
    directory = record_workload(wl, tmp_path / "four", trace_format="csv")
    scenario = Scenario(
        name="partial",
        entries=(ScenarioEntry(trace_dir=str(directory), cores=(0, 1)),),
    )
    composed = scenario.build(num_sockets=4, cores_per_socket=2)
    regions = composed.memory_regions()  # crashed with IndexError before the fix
    owners = {r["owner_thread"] for r in regions if r["owner_thread"] is not None}
    assert owners == {0, 1}
    assert len(list(composed.stream(1))) == 30


def test_build_workload_dispatch(tmp_path):
    from repro.workloads.scenario import build_workload

    synthetic = build_workload(num_sockets=2, cores_per_socket=2,
                               workload="facesim", scale=2048,
                               accesses_per_thread=20)
    assert synthetic.num_threads == 4
    composed = build_workload(num_sockets=2, cores_per_socket=2,
                              scenario="het-dual", scale=2048,
                              accesses_per_thread=20)
    assert composed.name == "het-dual"
    with pytest.raises(ValueError, match="mutually exclusive"):
        build_workload(num_sockets=2, cores_per_socket=2,
                       trace_dir="x", scenario="het-dual")
    with pytest.raises(ValueError, match="is required"):
        build_workload(num_sockets=2, cores_per_socket=2)
