"""The malformed-input corpus: every bad external trace fails loudly, located.

``tests/workloads/data/`` holds one committed specimen per failure class --
truncated gzip streams, wrong field counts, non-numeric fields, wrong-encoding
("mixed-endian" UTF-16) text, out-of-range values, empty inputs.  Each must
raise :class:`TraceFormatError`; line-level defects must name the offending
``file:line``, file-level defects (corrupt gzip, no accesses at all) must at
least name the file.  An importer that silently skips or truncates instead
of raising would corrupt every experiment downstream of it, so this corpus
is the regression wall for the error paths.
"""

from pathlib import Path

import pytest

from repro.workloads.importers import import_trace
from repro.workloads.trace_io import TraceFormatError

DATA = Path(__file__).parent / "data"

#: (corpus file, importer, located line or None for file-level, message part)
CORPUS = [
    ("lackey_unknown_op.txt", "lackey", 1, "unknown lackey op marker"),
    ("lackey_bad_addr.txt", "lackey", 2, "invalid hexadecimal address"),
    ("lackey_bad_size.txt", "lackey", 1, "invalid access size"),
    ("lackey_missing_operand.txt", "lackey", 1, "expected 'addr,size'"),
    ("lackey_empty.txt", "lackey", None, "contains no memory accesses"),
    ("lackey_truncated.gz", "lackey", None, "corrupt gzip stream"),
    ("pin_bad_field_count.txt", "pin", 2, "expected 3-5 comma-separated fields"),
    ("pin_non_numeric.txt", "pin", 3, "invalid thread id"),
    ("pin_bad_op.txt", "pin", 1, "invalid op"),
    ("pin_bad_gap.txt", "pin", 1, "invalid gap"),
    ("pin_addr_overflow.txt", "pin", 1, "outside the supported"),
    ("pin_empty.txt", "pin", None, "contains no memory accesses"),
    ("st_bad_field_count.txt", "synchrotrace", 1, "expected 5 comma-separated fields"),
    ("st_nonmonotonic.txt", "synchrotrace", 2, "not increasing for thread 0"),
    ("st_unknown_kind.txt", "synchrotrace", 1, "unknown event kind"),
    ("st_bad_bytes.txt", "synchrotrace", 1, "byte count must be positive"),
    ("st_mixed_endian.txt", "synchrotrace", 1, "invalid event id"),
    ("st_truncated.gz", "synchrotrace", None, "corrupt gzip stream"),
]


def test_corpus_is_complete():
    """Every committed specimen is exercised, and vice versa."""
    assert sorted(name for name, *_ in CORPUS) == sorted(
        p.name for p in DATA.iterdir() if p.is_file()
    )


@pytest.mark.parametrize(
    "filename,fmt,line,message", CORPUS, ids=[c[0] for c in CORPUS]
)
def test_malformed_input_raises_located_error(tmp_path, filename, fmt, line, message):
    source = DATA / filename
    with pytest.raises(TraceFormatError) as excinfo:
        import_trace(fmt, source, tmp_path / "out")
    text = str(excinfo.value)
    assert message in text
    if line is not None:
        assert f"{source}:{line}" in text, text
    else:
        assert str(source) in text, text


@pytest.mark.parametrize("fmt", ["lackey", "pin", "synchrotrace"])
def test_not_gzip_despite_gz_suffix(tmp_path, fmt):
    """A .gz file that is not actually gzip fails as corrupt, located to it."""
    source = tmp_path / "fake.gz"
    source.write_bytes(b"plain text, not gzip at all\n")
    with pytest.raises(TraceFormatError, match="corrupt gzip stream"):
        import_trace(fmt, source, tmp_path / "out")


def test_failed_import_leaves_no_usable_trace_dir(tmp_path):
    """A failing import must not leave a manifest behind (no silent garbage)."""
    with pytest.raises(TraceFormatError):
        import_trace("pin", DATA / "pin_bad_op.txt", tmp_path / "out")
    assert not (tmp_path / "out" / "manifest.json").exists()
