"""Clone fidelity: record -> analyze -> clone -> analyze must agree.

The statistical contract of :mod:`repro.workloads.clone` (tolerances are
documented in its module docstring and docs/ingestion.md):

* global write fraction within +-0.05 of the original;
* shared-access fraction within +-0.1;
* footprint within a factor of 2;
* and exact determinism -- same profile + same seed -> identical streams.
"""

import dataclasses

import pytest

from repro.workloads.analyzer import analyze_trace_dir, analyze_workload
from repro.workloads.clone import CLONE_SCHEMA, fit_clone, load_clone, save_clone
from repro.workloads.registry import make_workload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace_io import TraceFormatError, record_workload

ACCESSES = 1500
THREADS = 8


@pytest.fixture(scope="module")
def recorded_profile(tmp_path_factory):
    """A recorded synthetic run and its analyzer profile."""
    workload = make_workload(
        "streamcluster", scale=1024, accesses_per_thread=ACCESSES, num_threads=THREADS
    )
    directory = tmp_path_factory.mktemp("rec") / "streamcluster"
    record_workload(workload, directory)
    return analyze_trace_dir(directory)


def _reanalyze(spec, accesses):
    clone = SyntheticWorkload(spec, accesses_per_thread=accesses)
    return analyze_workload(clone, source="<clone>")


def test_clone_matches_write_mix_and_footprint(recorded_profile):
    spec, accesses = fit_clone(recorded_profile)
    assert accesses == ACCESSES
    cloned = _reanalyze(spec, accesses)

    assert cloned["num_threads"] == recorded_profile["num_threads"]
    assert cloned["total_accesses"] == recorded_profile["total_accesses"]
    # Write mix: +-0.05 globally, +-0.05 on the private/shared split.
    assert cloned["write_fraction"] == pytest.approx(
        recorded_profile["write_fraction"], abs=0.05
    )
    assert cloned["sharing"]["write_fraction_private"] == pytest.approx(
        recorded_profile["sharing"]["write_fraction_private"], abs=0.05
    )
    # Sharing mix: +-0.1 of the accesses hitting shared data.
    assert cloned["sharing"]["shared_access_fraction"] == pytest.approx(
        recorded_profile["sharing"]["shared_access_fraction"], abs=0.1
    )
    # Footprint: within a factor of 2 either way.
    original = recorded_profile["footprint"]["bytes"]
    assert original / 2 <= cloned["footprint"]["bytes"] <= original * 2
    # Stream shape: mean gap within one instruction.
    assert cloned["mean_gap"] == pytest.approx(recorded_profile["mean_gap"], abs=1.0)


def test_clone_is_seed_deterministic(recorded_profile):
    spec_a, accesses = fit_clone(recorded_profile, seed=7)
    spec_b, _ = fit_clone(recorded_profile, seed=7)
    assert spec_a == spec_b
    stream_a = list(SyntheticWorkload(spec_a, accesses_per_thread=200).stream(0))
    stream_b = list(SyntheticWorkload(spec_b, accesses_per_thread=200).stream(0))
    assert stream_a == stream_b
    # A different seed must actually change the stream.
    spec_c, _ = fit_clone(recorded_profile, seed=8)
    stream_c = list(SyntheticWorkload(spec_c, accesses_per_thread=200).stream(0))
    assert stream_a != stream_c


def test_clone_spec_round_trips_through_json(recorded_profile, tmp_path):
    spec, accesses = fit_clone(recorded_profile)
    path = tmp_path / "clone.json"
    save_clone(path, spec, accesses_per_thread=accesses, profile=recorded_profile)
    loaded = load_clone(path)
    assert loaded.spec == spec
    assert loaded.accesses_per_thread == accesses
    assert list(loaded.stream(0)) == list(
        SyntheticWorkload(spec, accesses_per_thread=accesses).stream(0)
    )


def test_load_clone_overrides(recorded_profile, tmp_path):
    spec, accesses = fit_clone(recorded_profile)
    path = tmp_path / "clone.json"
    save_clone(path, spec, accesses_per_thread=accesses)
    loaded = load_clone(path, scale=4, num_threads=2, seed=99, accesses_per_thread=50)
    assert loaded.num_threads == 2
    assert loaded.accesses_per_thread == 50
    assert loaded.spec.seed == 99
    assert loaded.spec.private_bytes_per_thread <= spec.private_bytes_per_thread


def test_fit_clone_rejects_non_profiles():
    with pytest.raises(TraceFormatError, match="workload-profile/v1"):
        fit_clone({"schema": "something-else"})


def test_load_clone_rejects_bad_documents(tmp_path):
    with pytest.raises(TraceFormatError, match="no such clone spec"):
        load_clone(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(TraceFormatError, match="invalid clone spec JSON"):
        load_clone(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"schema": "other/v9"}')
    with pytest.raises(TraceFormatError, match=CLONE_SCHEMA):
        load_clone(wrong)


def test_private_only_workload_clones_without_shared_region(tmp_path):
    """A fully-private trace fits to p_warm == 0 and no shared region."""
    source = tmp_path / "t.csv"
    source.write_text("0,R,0x0\n0,W,0x40\n1,R,0x100000\n1,W,0x100040\n")
    from repro.workloads.importers import import_pin_csv

    import_pin_csv(source, tmp_path / "dir")
    profile = analyze_trace_dir(tmp_path / "dir")
    spec, _ = fit_clone(profile)
    assert spec.p_private == 1.0
    assert spec.p_warm == 0.0
    assert spec.warm_shared_bytes == 0
    assert dataclasses.asdict(spec)["num_threads"] == 2
