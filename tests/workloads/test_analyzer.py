"""Analyzer drift guard and the `repro analyze` CLI contract.

``tests/golden/ingest_tiny/`` is a committed trace directory (imported from
the lackey specimen in ``tests/golden/regen_ingest.py``) and
``ingest_tiny_profile.json`` its pinned profile.  Any analyzer change that
shifts a single count or rounds differently fails here; regenerate the
goldens with ``PYTHONPATH=src python tests/golden/regen_ingest.py`` only
when the change is deliberate.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.stats.histograms import Log2Histogram, bucket_bounds, bucket_of
from repro.workloads.analyzer import (
    analyze_trace_dir,
    analyze_workload,
    main,
    profile_to_markdown,
)
from repro.workloads.trace_io import TraceFormatError

GOLDEN = Path(__file__).resolve().parents[1] / "golden"
TINY_DIR = GOLDEN / "ingest_tiny"
TINY_PROFILE = GOLDEN / "ingest_tiny_profile.json"


# ----------------------------------------------------------------------
# Golden drift guard
# ----------------------------------------------------------------------


def test_tiny_profile_matches_golden_byte_for_byte():
    profile = analyze_trace_dir(TINY_DIR)
    profile["source"] = "tests/golden/ingest_tiny"  # pinned relative in the golden
    produced = json.dumps(profile, indent=2) + "\n"
    assert produced == TINY_PROFILE.read_text()


def test_markdown_report_renders_golden_profile():
    report = profile_to_markdown(json.loads(TINY_PROFILE.read_text()))
    assert "# Workload profile: ingest-tiny" in report
    assert "## Reuse distance" in report
    assert "## Sharing degree" in report
    assert "| write fraction | 0.500 |" in report


# ----------------------------------------------------------------------
# Analyzer unit behaviour
# ----------------------------------------------------------------------


def test_reuse_distance_is_exact_lru_stack_distance(tmp_path):
    """A,B,C,A per thread: A's reuse sees 2 distinct blocks in between."""
    from repro.workloads.importers import import_pin_csv

    source = tmp_path / "t.csv"
    source.write_text("0,R,0x0\n0,R,0x40\n0,R,0x80\n0,R,0x0\n")
    import_pin_csv(source, tmp_path / "dir")
    profile = analyze_trace_dir(tmp_path / "dir")
    reuse = profile["reuse_distance"]
    assert reuse["cold_accesses"] == 3
    assert reuse["histogram"] == {str(bucket_of(2)): 1}


def test_empty_workload_is_rejected():
    class Empty:
        num_threads = 1

        def stream(self, tid):
            return iter(())

    with pytest.raises(TraceFormatError, match="no memory accesses"):
        analyze_workload(Empty(), source="empty")


def test_log2_histogram_buckets_and_bounds():
    assert bucket_of(0) == -1
    assert bucket_of(1) == 0
    assert bucket_of(7) == 2
    assert bucket_of(8) == 3
    assert bucket_bounds(-1) == (0, 0)
    assert bucket_bounds(3) == (8, 15)
    hist = Log2Histogram()
    hist.add_all([0, 1, 7, 8])
    assert hist.to_json_dict() == {"-1": 1, "0": 1, "2": 1, "3": 1}
    assert Log2Histogram.from_json_dict(hist.to_json_dict()) == hist


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------


def test_cli_analyze_writes_json_and_report(tmp_path, capsys):
    out = tmp_path / "profile.json"
    assert main([str(TINY_DIR), "--json", str(out)]) == 0
    captured = capsys.readouterr()
    assert "# Workload profile: ingest-tiny" in captured.out
    assert json.loads(out.read_text())["total_accesses"] == 6


def test_cli_analyze_quiet_json_to_stdout(capsys):
    assert main([str(TINY_DIR), "--json", "-"]) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out)["name"] == "ingest-tiny"


def test_cli_analyze_clone_out(tmp_path, capsys):
    clone = tmp_path / "clone.json"
    assert main([str(TINY_DIR), "--quiet", "--clone-out", str(clone)]) == 0
    payload = json.loads(clone.read_text())
    assert payload["schema"] == "workload-clone/v1"
    assert payload["spec"]["name"] == "ingest-tiny-clone"
    assert payload["fitted_from"]["name"] == "ingest-tiny"


def test_cli_analyze_missing_dir_exits_nonzero(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 1
    assert "error:" in capsys.readouterr().err


def test_repro_cli_dispatches_import_and_analyze(tmp_path, capsys):
    """`repro import` / `repro analyze` work through the top-level CLI."""
    source = tmp_path / "t.lackey"
    source.write_text("I  400000,2\n L 1000,8\n S 1040,4\n")
    out_dir = tmp_path / "imported"
    assert repro_main(["import", "lackey", str(source), str(out_dir)]) == 0
    assert "imported 2 accesses" in capsys.readouterr().out
    assert repro_main(["analyze", str(out_dir), "--quiet", "--json", "-"]) == 0
    profile = json.loads(capsys.readouterr().out)
    assert profile["total_accesses"] == 2
    assert repro_main(["import", "lackey", str(tmp_path / "missing"), "x"]) == 1
