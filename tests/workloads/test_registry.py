"""Tests for the workload registry (all benchmarks the paper evaluates)."""

import pytest

from repro.workloads.registry import (
    EVALUATED_WORKLOADS,
    WORKLOAD_SPECS,
    get_spec,
    make_workload,
    workload_names,
)


def test_all_paper_workloads_present():
    expected = {
        "facesim", "streamcluster", "fluidanimate", "canneal", "freqmine",
        "nutch", "cassandra", "classification", "tunkrank",
    }
    assert set(EVALUATED_WORKLOADS) == expected
    assert expected | {"mcf"} <= set(WORKLOAD_SPECS)


def test_workload_names_order_and_mcf_flag():
    names = workload_names()
    assert names == EVALUATED_WORKLOADS
    assert "mcf" in workload_names(include_spec=True)
    assert "mcf" not in names


def test_get_spec_unknown_name():
    with pytest.raises(KeyError):
        get_spec("doesnotexist")


def test_specs_are_32_threads_except_mcf():
    for name in EVALUATED_WORKLOADS:
        assert get_spec(name).num_threads == 32
    assert get_spec("mcf").num_threads == 1


def test_every_spec_has_large_working_set_at_paper_scale():
    # The paper selects workloads with working sets over 100 MB.
    for name in EVALUATED_WORKLOADS:
        spec = get_spec(name)
        shared = spec.hot_shared_bytes + spec.warm_shared_bytes + spec.cold_shared_bytes
        assert shared > 100 * 2**20, name


def test_make_workload_applies_scale_threads_and_seed():
    workload = make_workload("streamcluster", scale=256, accesses_per_thread=10,
                             num_threads=8, seed=7)
    assert workload.num_threads == 8
    assert workload.spec.seed == 7
    assert workload.spec.warm_shared_bytes == get_spec("streamcluster").warm_shared_bytes // 256
    assert workload.accesses_per_thread == 10


def test_streamcluster_fits_in_dram_cache_and_canneal_does_not():
    # These relationships drive the paper's Fig. 6 / Fig. 8 shapes.
    dram_per_socket = 1 << 30
    streamcluster = get_spec("streamcluster")
    canneal = get_spec("canneal")
    assert (
        streamcluster.hot_shared_bytes + streamcluster.warm_shared_bytes
        <= dram_per_socket
    )
    assert (
        canneal.warm_shared_bytes + canneal.cold_shared_bytes > 2 * dram_per_socket
    )


def test_server_workloads_have_low_shared_write_fractions():
    for name in ("cassandra", "classification", "tunkrank"):
        spec = get_spec(name)
        assert spec.write_fraction_hot <= 0.2
        assert spec.write_fraction_warm <= 0.1


def test_communication_heavy_workloads_have_hot_write_sharing():
    for name in ("facesim", "fluidanimate", "nutch", "freqmine"):
        spec = get_spec(name)
        assert spec.write_fraction_hot >= 0.4
        assert spec.p_hot >= 0.2


def test_mcf_is_essentially_private():
    spec = get_spec("mcf")
    assert spec.p_private >= 0.9
    assert spec.warm_shared_bytes == 0
