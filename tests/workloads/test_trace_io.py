"""Tests for the on-disk trace formats and the trace-directory workload."""

import gzip
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.compiled import compile_trace
from repro.workloads.registry import make_workload
from repro.workloads.trace import MemoryAccess
from repro.workloads.trace_io import (
    BINARY_MAGIC,
    TRACE_FORMATS,
    TraceDirWorkload,
    TraceFormatError,
    compile_trace_file,
    read_trace,
    read_trace_bin,
    read_trace_csv,
    record_workload,
    trace_format_of,
    write_trace,
    write_trace_bin,
    write_trace_csv,
)

accesses_strategy = st.lists(
    st.builds(
        MemoryAccess,
        addr=st.integers(min_value=0, max_value=2**47),
        is_write=st.booleans(),
        gap=st.integers(min_value=0, max_value=10**6),
    ),
    max_size=200,
)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(accesses=accesses_strategy, fmt=st.sampled_from(TRACE_FORMATS))
def test_round_trip_property(tmp_path_factory, accesses, fmt):
    """CSV and binary (plain and gzipped) preserve every record exactly."""
    path = tmp_path_factory.mktemp("rt") / f"trace.{fmt}"
    written = write_trace(path, accesses)
    assert written == len(accesses)
    assert list(read_trace(path)) == accesses


def test_csv_and_binary_agree(tmp_path):
    accesses = [MemoryAccess(64 * i, is_write=i % 3 == 0, gap=i % 7) for i in range(50)]
    csv_path = tmp_path / "t.csv"
    bin_path = tmp_path / "t.bin"
    write_trace_csv(csv_path, accesses)
    write_trace_bin(bin_path, accesses)
    assert list(read_trace_csv(csv_path)) == list(read_trace_bin(bin_path)) == accesses


def test_csv_accepts_hex_comments_blanks_and_header(tmp_path):
    path = tmp_path / "hand.csv"
    path.write_text(
        "# a hand-written trace\n"
        "addr,is_write,gap\n"
        "\n"
        "0x1000, 1, 2\n"
        "4096,0,0\n"
    )
    records = list(read_trace_csv(path))
    assert records == [
        MemoryAccess(0x1000, is_write=True, gap=2),
        MemoryAccess(4096, is_write=False, gap=0),
    ]


def test_gzip_files_are_actually_gzipped(tmp_path):
    path = tmp_path / "t.csv.gz"
    write_trace(path, [MemoryAccess(64)])
    with gzip.open(path, "rt") as handle:  # raises if not gzip
        assert "64" in handle.read()


def test_compile_trace_file_matches_generic_compile(tmp_path):
    """Chunked file compilation equals compiling the in-memory stream."""
    workload = make_workload("facesim", scale=1024, accesses_per_thread=700)
    path = tmp_path / "t.bin"
    write_trace(path, workload.stream(1))
    compiled = compile_trace_file(path, layout=workload.layout, chunk_records=64)
    reference = compile_trace(workload, 1)
    assert compiled.addrs == reference.addrs
    assert compiled.writes == reference.writes
    assert compiled.gaps == reference.gaps
    assert compiled.blocks == reference.blocks
    assert compiled.pages == reference.pages


# ----------------------------------------------------------------------
# Malformed input: error messages must locate the problem
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "line, fragment",
    [
        ("1,2", "expected 3 comma-separated fields"),
        ("abc,0,1", "invalid address 'abc'"),
        ("64,2,1", "invalid is_write flag '2'"),
        ("64,0,x", "invalid gap 'x'"),
        ("-4,0,1", "address must be non-negative"),
        ("64,0,-1", "gap must be non-negative"),
    ],
)
def test_csv_malformed_records(tmp_path, line, fragment):
    path = tmp_path / "bad.csv"
    path.write_text("addr,is_write,gap\n64,0,0\n" + line + "\n")
    with pytest.raises(TraceFormatError) as excinfo:
        list(read_trace_csv(path))
    message = str(excinfo.value)
    assert fragment in message
    assert f"{path}:3" in message  # file and 1-based line number


def test_binary_bad_magic(tmp_path):
    path = tmp_path / "bad.bin"
    path.write_bytes(b"NOTATRACE")
    with pytest.raises(TraceFormatError, match="bad magic"):
        list(read_trace_bin(path))


def test_binary_truncated_record(tmp_path):
    path = tmp_path / "trunc.bin"
    write_trace_bin(path, [MemoryAccess(64), MemoryAccess(128)])
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(TraceFormatError, match="truncated record after 1 records"):
        list(read_trace_bin(path))


def test_unknown_extension_rejected(tmp_path):
    with pytest.raises(TraceFormatError, match="unrecognised trace extension"):
        trace_format_of(tmp_path / "trace.txt")
    with pytest.raises(TraceFormatError):
        write_trace(tmp_path / "trace.parquet", [])


def test_binary_range_checks(tmp_path):
    with pytest.raises(TraceFormatError, match="does not fit int64"):
        write_trace_bin(tmp_path / "a.bin", [MemoryAccess(2**64)])
    with pytest.raises(TraceFormatError, match="gap"):
        write_trace_bin(tmp_path / "b.bin", [MemoryAccess(0, gap=2**31)])


# ----------------------------------------------------------------------
# Trace directories
# ----------------------------------------------------------------------


@pytest.fixture()
def small_workload():
    return make_workload("facesim", scale=2048, accesses_per_thread=120, num_threads=3)


def test_record_and_replay_directory(tmp_path, small_workload):
    directory = record_workload(small_workload, tmp_path / "dir", trace_format="csv")
    replay = TraceDirWorkload(directory)
    assert replay.num_threads == 3
    assert replay.name == small_workload.name
    for thread_id in range(3):
        assert list(replay.stream(thread_id)) == list(small_workload.stream(thread_id))
    assert replay.memory_regions() == small_workload.memory_regions()
    assert replay.serial_init_pages() == small_workload.serial_init_pages()


def test_record_rejects_unknown_format(tmp_path, small_workload):
    with pytest.raises(TraceFormatError, match="unknown trace format"):
        record_workload(small_workload, tmp_path / "dir", trace_format="parquet")


def test_missing_manifest(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(TraceFormatError, match="missing manifest.json"):
        TraceDirWorkload(tmp_path / "empty")


def test_corrupt_manifest(tmp_path):
    directory = tmp_path / "corrupt"
    directory.mkdir()
    (directory / "manifest.json").write_text("{not json")
    with pytest.raises(TraceFormatError, match="invalid JSON"):
        TraceDirWorkload(directory)


def test_manifest_missing_keys(tmp_path):
    directory = tmp_path / "incomplete"
    directory.mkdir()
    (directory / "manifest.json").write_text(json.dumps({"num_threads": 1}))
    with pytest.raises(TraceFormatError, match="missing required key 'trace_format'"):
        TraceDirWorkload(directory)


def test_missing_trace_file(tmp_path, small_workload):
    directory = record_workload(small_workload, tmp_path / "dir", trace_format="csv")
    replay = TraceDirWorkload(directory)
    replay.trace_path(2).unlink()
    with pytest.raises(TraceFormatError, match="missing trace file"):
        list(replay.stream(2))
    with pytest.raises(TraceFormatError, match="missing trace file"):
        replay.compiled_trace(2)


def test_thread_id_out_of_range(tmp_path, small_workload):
    directory = record_workload(small_workload, tmp_path / "dir", trace_format="csv")
    replay = TraceDirWorkload(directory)
    with pytest.raises(ValueError, match="out of range"):
        replay.trace_path(3)


def test_binary_magic_constant_is_stable():
    """The on-disk format identifier must never drift silently."""
    assert BINARY_MAGIC == b"C3DTRC01"
