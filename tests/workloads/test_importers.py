"""Property tests for the external-trace importers (docs/ingestion.md).

Each importer is hammered with randomly generated *valid* source text and
held to the same wall of properties:

* importing the gzipped variant of a source produces a byte-identical
  trace directory to importing the plain text;
* importing is deterministic (same source twice -> identical bytes);
* the emitted directory round-trips: re-recording the imported
  ``TraceDirWorkload`` with ``record_workload`` reproduces the per-core
  trace files byte for byte;
* and (acceptance criterion) an imported lackey trace replays
  bit-identically on the ``object``, ``compiled`` and ``vector`` engines.
"""

import gzip
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.importers import (
    IMPORTERS,
    import_lackey,
    import_pin_csv,
    import_synchrotrace,
    import_trace,
    importer_names,
)
from repro.workloads.trace_io import (
    TraceDirWorkload,
    TraceFormatError,
    record_workload,
)

# ----------------------------------------------------------------------
# Source-text strategies (valid external traces)
# ----------------------------------------------------------------------

_addr = st.integers(min_value=0, max_value=2**47)
_size = st.integers(min_value=1, max_value=64)


def _render_lackey(ops):
    lines = ["==123== fake valgrind banner"]
    for op, addr, size in ops:
        prefix = "I  " if op == "I" else f" {op} "
        lines.append(f"{prefix}{addr:08x},{size}")
    return "\n".join(lines) + "\n"


lackey_sources = st.lists(
    st.tuples(st.sampled_from("ILSM"), _addr, _size), min_size=1, max_size=60
).filter(lambda ops: any(op != "I" for op, _, _ in ops)).map(_render_lackey)


def _render_pin(rows):
    lines = ["tid,op,addr,size,gap"]
    for tid, op, addr, size, gap in rows:
        fields = [str(tid), op, hex(addr)]
        if size is not None:
            fields.append(str(size))
            if gap is not None:
                fields.append(str(gap))
        lines.append(",".join(fields))
    return "\n".join(lines) + "\n"


pin_sources = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.sampled_from(["R", "W", "r", "w", "0", "1"]),
        _addr,
        st.one_of(st.none(), _size),
        st.one_of(st.none(), st.integers(min_value=0, max_value=1000)),
    ),
    min_size=1,
    max_size=60,
).map(_render_pin)


def _render_synchrotrace(events):
    lines = ["# synthetic event trace"]
    for event_id, (tid, kind, a, b) in enumerate(events, start=1):
        lines.append(f"{event_id},{tid},{kind},{a},{b}")
    return "\n".join(lines) + "\n"


synchrotrace_sources = st.lists(
    st.one_of(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.just("comp"),
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=0, max_value=500),
        ),
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.sampled_from(["read", "write"]),
            _addr,
            _size,
        ),
    ),
    min_size=1,
    max_size=60,
).filter(lambda evs: any(kind != "comp" for _, kind, _, _ in evs)).map(
    _render_synchrotrace
)

FORMAT_SOURCES = [
    ("lackey", lackey_sources),
    ("pin", pin_sources),
    ("synchrotrace", synchrotrace_sources),
]


def _trace_files(directory):
    return sorted(p.name for p in Path(directory).iterdir())


def _dir_bytes(directory):
    return {p.name: p.read_bytes() for p in Path(directory).iterdir()}


def _streams(workload):
    return [list(workload.stream(tid)) for tid in range(workload.num_threads)]


# ----------------------------------------------------------------------
# The property wall, run per importer
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "fmt,sources", FORMAT_SOURCES, ids=[fmt for fmt, _ in FORMAT_SOURCES]
)
class TestImporterProperties:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_gzip_variant_imports_byte_identically(
        self, tmp_path_factory, fmt, sources, data
    ):
        text = data.draw(sources)
        base = tmp_path_factory.mktemp("gz")
        plain = base / "trace.txt"
        plain.write_text(text)
        gzipped = base / "trace.txt.gz"
        with gzip.open(gzipped, "wt") as handle:
            handle.write(text)
        import_trace(fmt, plain, base / "out_plain", name="same")
        import_trace(fmt, gzipped, base / "out_gz", name="same")
        plain_bytes = _dir_bytes(base / "out_plain")
        gz_bytes = _dir_bytes(base / "out_gz")
        # The manifests differ only in the recorded source path.
        assert _trace_files(base / "out_plain") == _trace_files(base / "out_gz")
        for name in plain_bytes:
            if name != "manifest.json":
                assert plain_bytes[name] == gz_bytes[name], name

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_import_is_deterministic(self, tmp_path_factory, fmt, sources, data):
        text = data.draw(sources)
        base = tmp_path_factory.mktemp("det")
        source = base / "trace.txt"
        source.write_text(text)
        import_trace(fmt, source, base / "a")
        import_trace(fmt, source, base / "b")
        assert _dir_bytes(base / "a") == _dir_bytes(base / "b")

    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), trace_format=st.sampled_from(["csv", "bin"]))
    def test_emitted_directory_round_trips(
        self, tmp_path_factory, fmt, sources, data, trace_format
    ):
        """record_workload(imported) reproduces the trace files byte for byte."""
        text = data.draw(sources)
        base = tmp_path_factory.mktemp("rt")
        source = base / "trace.txt"
        source.write_text(text)
        import_trace(fmt, source, base / "first", trace_format=trace_format)
        first = TraceDirWorkload(base / "first")
        record_workload(first, base / "second", trace_format=trace_format)
        first_bytes = _dir_bytes(base / "first")
        second_bytes = _dir_bytes(base / "second")
        for name in first_bytes:
            if name != "manifest.json":
                assert name in second_bytes
                assert first_bytes[name] == second_bytes[name], name
        assert _streams(first) == _streams(TraceDirWorkload(base / "second"))

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_gzipped_emission_replays_identically(
        self, tmp_path_factory, fmt, sources, data
    ):
        """csv vs bin.gz on-disk formats carry the identical access stream."""
        text = data.draw(sources)
        base = tmp_path_factory.mktemp("fmt")
        source = base / "trace.txt"
        source.write_text(text)
        import_trace(fmt, source, base / "csv", trace_format="csv")
        import_trace(fmt, source, base / "bingz", trace_format="bin.gz")
        assert _streams(TraceDirWorkload(base / "csv")) == _streams(
            TraceDirWorkload(base / "bingz")
        )


# ----------------------------------------------------------------------
# Registry and summary plumbing
# ----------------------------------------------------------------------


def test_registry_names_and_dispatch():
    assert importer_names() == ["lackey", "pin", "synchrotrace"]
    assert IMPORTERS["lackey"] is import_lackey
    assert IMPORTERS["pin"] is import_pin_csv
    assert IMPORTERS["synchrotrace"] is import_synchrotrace
    with pytest.raises(TraceFormatError, match="unknown import format"):
        import_trace("dinero", "x", "y")


def test_import_summary_counts(tmp_path):
    source = tmp_path / "t.csv"
    source.write_text("0,R,0x0\n1,W,0x1000\n0,R,0x40\n")
    summary = import_trace("pin", source, tmp_path / "out")
    assert summary.num_threads == 2
    assert summary.records_per_thread == [2, 1]
    assert summary.total_records == 3
    assert "3 accesses" in summary.format_line()


def test_thread_gaps_get_empty_trace_files(tmp_path):
    """A source mentioning only threads 0 and 3 still yields 4 trace files."""
    source = tmp_path / "t.csv"
    source.write_text("0,R,0x0\n3,W,0x1000\n")
    summary = import_trace("pin", source, tmp_path / "out")
    assert summary.num_threads == 4
    assert summary.records_per_thread == [1, 0, 0, 1]
    workload = TraceDirWorkload(tmp_path / "out")
    assert list(workload.stream(1)) == []
    assert len(list(workload.stream(3))) == 1


def test_region_synthesis_private_and_shared(tmp_path):
    """Pages touched by one thread become private regions, by two -> shared."""
    source = tmp_path / "t.csv"
    source.write_text(
        "0,R,0x0\n"        # page 0: only thread 0 -> private
        "1,W,0x2000\n"     # page 2: only thread 1 -> private
        "0,R,0x4000\n"     # page 4: both threads  -> shared 'warm'
        "1,R,0x4040\n"
    )
    import_trace("pin", source, tmp_path / "out")
    regions = TraceDirWorkload(tmp_path / "out").memory_regions()
    kinds = {(r["kind"], r["owner_thread"]) for r in regions}
    assert kinds == {("private", 0), ("private", 1), ("warm", None)}


def test_no_regions_flag_suppresses_synthesis(tmp_path):
    source = tmp_path / "t.csv"
    source.write_text("0,R,0x0\n")
    import_trace("pin", source, tmp_path / "out", synthesize_regions=False)
    assert TraceDirWorkload(tmp_path / "out").memory_regions() == []


def test_lackey_modify_expands_to_load_then_store(tmp_path):
    source = tmp_path / "t.lackey"
    source.write_text("I  400000,2\nI  400002,3\n M 1000,4\n")
    import_lackey(source, tmp_path / "out")
    accesses = list(TraceDirWorkload(tmp_path / "out").stream(0))
    assert [(a.addr, a.is_write, a.gap) for a in accesses] == [
        (0x1000, False, 2),
        (0x1000, True, 0),
    ]


def test_synchrotrace_comp_events_accumulate_gap(tmp_path):
    source = tmp_path / "t.st"
    source.write_text("1,0,comp,5,2\n2,0,comp,3,0\n3,0,read,0x40,8\n4,0,write,0x40,8\n")
    import_synchrotrace(source, tmp_path / "out")
    accesses = list(TraceDirWorkload(tmp_path / "out").stream(0))
    assert [(a.addr, a.is_write, a.gap) for a in accesses] == [
        (0x40, False, 10),
        (0x40, True, 0),
    ]


# ----------------------------------------------------------------------
# Acceptance: imported traces replay bit-identically on every engine
# ----------------------------------------------------------------------


def _run(workload, engine):
    config = SystemConfig.quad_socket(
        protocol="c3d", allocation_policy="first_touch"
    ).scaled(1024)
    simulator = Simulator(NumaSystem(config), workload, engine=engine)
    return simulator.run(prewarm=True, warmup_accesses_per_core=0)


def test_imported_lackey_replays_identically_on_all_engines(tmp_path):
    lines = ["==99== banner"]
    for i in range(300):
        lines.append(f"I  {0x400000 + 2 * i:x},2")
        op = "LSM"[i % 3]
        lines.append(f" {op} {0x10000 + 64 * (i % 37):x},8")
    source = tmp_path / "t.lackey"
    source.write_text("\n".join(lines) + "\n")
    import_lackey(source, tmp_path / "out")

    results = {
        engine: _run(TraceDirWorkload(tmp_path / "out"), engine)
        for engine in ("object", "compiled", "vector")
    }
    baseline = results["object"]
    assert baseline.accesses_executed > 0
    for engine in ("compiled", "vector"):
        result = results[engine]
        assert result.stats.as_dict() == baseline.stats.as_dict(), engine
        assert result.total_time_ns == baseline.total_time_ns, engine
        assert result.inter_socket_bytes == baseline.inter_socket_bytes, engine
        assert result.accesses_executed == baseline.accesses_executed, engine
