"""Tests for the synthetic workload generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec
from repro.workloads.trace import materialise

MB = 2**20


def small_spec(**overrides):
    params = dict(
        name="unit",
        num_threads=4,
        private_bytes_per_thread=64 * 1024,
        hot_shared_bytes=128 * 1024,
        warm_shared_bytes=1 * MB,
        cold_shared_bytes=2 * MB,
        p_private=0.3,
        p_hot=0.2,
        p_warm=0.4,
        p_cold=0.1,
        seed=42,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def test_mix_must_sum_to_one():
    with pytest.raises(ValueError):
        small_spec(p_private=0.9)


def test_negative_probability_rejected():
    with pytest.raises(ValueError):
        small_spec(p_private=-0.1, p_hot=0.6, p_warm=0.4, p_cold=0.1)


def test_stream_is_deterministic():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=200)
    first = materialise(workload.stream(0))
    second = materialise(workload.stream(0))
    assert first == second


def test_streams_differ_across_threads():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=200)
    assert materialise(workload.stream(0)) != materialise(workload.stream(1))


def test_stream_length_and_fields():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=333)
    accesses = materialise(workload.stream(2))
    assert len(accesses) == 333
    assert all(access.addr >= 0 and access.gap >= 0 for access in accesses)
    assert any(access.is_write for access in accesses)
    assert any(not access.is_write for access in accesses)


def test_invalid_thread_id_rejected():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=10)
    with pytest.raises(ValueError):
        next(workload.stream(99))


def test_scaling_divides_region_sizes():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=10)
    scaled = workload.scaled(4)
    assert scaled.spec.warm_shared_bytes == small_spec().warm_shared_bytes // 4
    assert scaled.spec.hot_shared_bytes == small_spec().hot_shared_bytes // 4
    # Scaling never goes below one page.
    tiny = workload.scaled(1 << 30)
    assert tiny.spec.warm_shared_bytes == 4096


def test_regions_do_not_overlap():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=10)
    regions = workload.memory_regions()
    intervals = sorted((r["base"], r["base"] + r["size"]) for r in regions)
    for (start_a, end_a), (start_b, _end_b) in zip(intervals, intervals[1:]):
        assert end_a <= start_b


def test_memory_regions_cover_private_and_shared():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=10)
    regions = workload.memory_regions()
    kinds = [region["kind"] for region in regions]
    assert kinds.count("private") == 4
    assert "warm" in kinds and "hot" in kinds and "cold" in kinds
    owners = {region["owner_thread"] for region in regions if region["kind"] == "private"}
    assert owners == {0, 1, 2, 3}


def test_serial_init_pages_cover_shared_regions():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=10)
    pages = workload.serial_init_pages()
    expected_pages = (128 * 1024 + 1 * MB + 2 * MB) // 4096
    assert len(pages) == expected_pages


def test_addresses_fall_inside_their_regions():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=500)
    regions = workload.memory_regions(thread_id=1)
    shared = workload.memory_regions()
    valid_ranges = [(r["base"], r["base"] + r["size"]) for r in regions + shared]
    for access in workload.stream(1):
        assert any(start <= access.addr < end for start, end in valid_ranges)


def test_with_threads_and_with_accesses():
    workload = SyntheticWorkload(small_spec(), accesses_per_thread=10)
    assert workload.with_threads(8).num_threads == 8
    assert workload.with_accesses(77).accesses_per_thread == 77
    assert workload.total_footprint_bytes() > 0


def test_write_fraction_roughly_respected():
    spec = small_spec(
        write_fraction_private=0.5, write_fraction_hot=0.5,
        write_fraction_warm=0.5, write_fraction_cold=0.5,
    )
    workload = SyntheticWorkload(spec, accesses_per_thread=4000)
    accesses = materialise(workload.stream(0))
    write_fraction = sum(a.is_write for a in accesses) / len(accesses)
    assert 0.4 < write_fraction < 0.6


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 16), st.integers(1, 500))
def test_any_thread_count_and_length_generates_exactly_n_accesses(threads, length):
    spec = small_spec(num_threads=threads)
    workload = SyntheticWorkload(spec, accesses_per_thread=length)
    assert len(materialise(workload.stream(threads - 1))) == length
