"""Tests for the trace record helpers."""

from repro.workloads.trace import MemoryAccess, materialise


def test_memory_access_defaults():
    access = MemoryAccess(addr=128)
    assert not access.is_write
    assert access.gap == 0


def test_memory_access_is_hashable_and_comparable():
    a = MemoryAccess(addr=64, is_write=True, gap=2)
    b = MemoryAccess(addr=64, is_write=True, gap=2)
    assert a == b
    assert hash(a) == hash(b)


def test_materialise_with_and_without_limit():
    stream = (MemoryAccess(addr=i) for i in range(10))
    assert len(materialise(stream)) == 10
    stream = (MemoryAccess(addr=i) for i in range(10))
    limited = materialise(stream, limit=3)
    assert [access.addr for access in limited] == [0, 1, 2]
