"""Tests for the ring and point-to-point topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.interconnect.topology import (
    PointToPointTopology,
    RingTopology,
    make_topology,
)


def test_ring_hop_counts_quad_socket():
    ring = RingTopology(4)
    assert ring.hops(0, 0) == 0
    assert ring.hops(0, 1) == 1
    assert ring.hops(0, 2) == 2
    assert ring.hops(0, 3) == 1  # shorter way around
    assert ring.max_hops() == 2


def test_ring_route_is_contiguous():
    ring = RingTopology(4)
    route = ring.route(0, 2)
    assert route in ([(0, 1), (1, 2)], [(0, 3), (3, 2)])
    for (a, b), (c, _d) in zip(route, route[1:]):
        assert b == c


def test_p2p_single_hop():
    p2p = PointToPointTopology(2)
    assert p2p.hops(0, 1) == 1
    assert p2p.route(0, 1) == [(0, 1)]
    assert p2p.route(1, 1) == []
    assert p2p.max_hops() == 1


def test_links_enumeration():
    ring = RingTopology(4)
    links = ring.links()
    assert (0, 1) in links and (1, 0) in links
    assert len(links) == 8  # 4 bidirectional ring links
    p2p = PointToPointTopology(3)
    assert len(p2p.links()) == 6


def test_out_of_range_socket_rejected():
    ring = RingTopology(4)
    with pytest.raises(ValueError):
        ring.route(0, 4)
    with pytest.raises(ValueError):
        ring.route(-1, 0)


def test_factory():
    assert isinstance(make_topology("ring", 4), RingTopology)
    assert isinstance(make_topology("p2p", 2), PointToPointTopology)
    assert isinstance(make_topology("mesh", 4), PointToPointTopology)
    with pytest.raises(ValueError):
        make_topology("torus", 4)


@given(st.integers(2, 8), st.integers(0, 7), st.integers(0, 7))
def test_ring_routes_end_at_destination(n, src, dst):
    src %= n
    dst %= n
    ring = RingTopology(n)
    route = ring.route(src, dst)
    if src == dst:
        assert route == []
    else:
        assert route[0][0] == src
        assert route[-1][1] == dst
        assert len(route) <= n // 2 + 1


@given(st.integers(2, 8), st.integers(0, 7), st.integers(0, 7))
def test_ring_hops_symmetric(n, a, b):
    a %= n
    b %= n
    ring = RingTopology(n)
    assert ring.hops(a, b) == ring.hops(b, a)
