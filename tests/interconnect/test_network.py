"""Tests for the inter-socket network (links, packets, traffic accounting)."""

import pytest

from repro.interconnect.link import Link
from repro.interconnect.network import Interconnect
from repro.interconnect.packet import (
    CONTROL_PACKET_BYTES,
    DATA_PACKET_BYTES,
    MessageClass,
    Packet,
    PacketKind,
)
from repro.interconnect.topology import PointToPointTopology, RingTopology


def make_network(n=4, topology="ring", **kwargs):
    topo = RingTopology(n) if topology == "ring" else PointToPointTopology(n)
    return Interconnect(topo, **kwargs)


def test_packet_sizes_follow_table_ii():
    assert CONTROL_PACKET_BYTES == 16
    assert DATA_PACKET_BYTES == 80
    assert MessageClass.REQUEST.kind is PacketKind.CONTROL
    assert MessageClass.DATA_RESPONSE.kind is PacketKind.DATA
    assert MessageClass.WRITEBACK.kind is PacketKind.DATA
    assert Packet.control(0, 1, MessageClass.REQUEST).size_bytes == 16
    assert Packet.data(0, 1, MessageClass.DATA_RESPONSE).is_data


def test_send_latency_is_hops_times_hop_latency():
    assert make_network(4, hop_latency_ns=20.0).send(
        0.0, 0, 1, MessageClass.REQUEST
    ) == pytest.approx(20.0)
    assert make_network(4, hop_latency_ns=20.0).send(
        0.0, 0, 2, MessageClass.REQUEST
    ) == pytest.approx(40.0)


def test_same_socket_send_is_free_and_untracked():
    network = make_network()
    assert network.send(0.0, 1, 1, MessageClass.REQUEST) == 0.0
    assert network.bytes_sent == 0
    assert network.messages_sent == 0


def test_traffic_accounting_by_class():
    network = make_network()
    network.send(0.0, 0, 1, MessageClass.REQUEST)
    network.send(0.0, 1, 0, MessageClass.DATA_RESPONSE)
    assert network.bytes_sent == 16 + 80
    assert network.control_bytes() == 16
    assert network.data_bytes() == 80
    assert network.messages_by_class[MessageClass.REQUEST] == 1


def test_round_trip_combines_request_and_response():
    network = make_network(2, topology="p2p", hop_latency_ns=20.0)
    latency = network.round_trip(0.0, 0, 1)
    assert latency == pytest.approx(40.0)
    assert network.round_trip(0.0, 1, 1) == 0.0


def test_broadcast_reaches_every_other_socket():
    network = make_network(4)
    latency = network.broadcast(0.0, 0)
    # Furthest socket on a 4-ring is 2 hops away; request + ack = 4 hops,
    # plus a little link serialisation for packets sharing the first hop.
    assert latency >= 4 * 20.0
    assert latency < 4 * 20.0 + 5.0
    assert network.messages_by_class[MessageClass.BROADCAST_INVALIDATION] == 3
    assert network.messages_by_class[MessageClass.ACK] == 3


def test_zero_latency_idealisation():
    network = make_network(4, zero_latency=True)
    assert network.send(0.0, 0, 2, MessageClass.REQUEST) == 0.0
    assert network.bytes_sent > 0  # traffic still counted


def test_link_queueing_and_infinite_bandwidth():
    link = Link(0, 1, 1.0)  # 1 byte/ns
    assert link.occupy(0.0, 80) == 0.0
    assert link.occupy(0.0, 80) == pytest.approx(80.0)
    assert link.occupy(10.0, 80) > 0.0
    fast = Link(0, 1, 1.0, infinite_bandwidth=True)
    assert fast.occupy(0.0, 10_000) == 0.0
    with pytest.raises(ValueError):
        Link(0, 1, 0.0)


def test_link_out_of_order_arrival_not_charged():
    link = Link(0, 1, 1.0)
    link.occupy(100.0, 80)
    assert link.occupy(1.0, 80) == 0.0


def test_reset_counters():
    network = make_network()
    network.send(0.0, 0, 1, MessageClass.REQUEST)
    network.reset_counters()
    assert network.bytes_sent == 0
    assert network.messages_sent == 0
    assert network.link_bytes() == 0


def test_link_utilisation_bounds():
    network = make_network()
    for _ in range(10):
        network.send(0.0, 0, 1, MessageClass.DATA_RESPONSE)
    utilisations = network.link_utilisations(1000.0)
    assert all(0.0 <= value <= 1.0 for value in utilisations.values())
    assert network.busiest_link_utilisation(1000.0) > 0.0
