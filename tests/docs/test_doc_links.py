"""The docs link checker must pass on the repo and catch broken links."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_docs_have_no_broken_links(capsys):
    checker = _load_checker()
    assert checker.main([]) == 0
    out = capsys.readouterr().out
    assert "all intra-repo links resolve" in out


def test_checker_scans_readme_and_all_docs():
    checker = _load_checker()
    documents = {d.name for d in checker.default_documents(REPO_ROOT)}
    assert "README.md" in documents
    assert {
        "workloads.md", "experiments.md", "performance.md",
        "campaigns.md", "architecture.md",
    } <= documents


def test_required_docs_all_present():
    checker = _load_checker()
    assert checker.missing_required_docs(REPO_ROOT) == []
    assert {"docs/campaigns.md", "docs/architecture.md"} <= set(checker.REQUIRED_DOCS)


def test_missing_required_doc_fails(tmp_path):
    checker = _load_checker()
    assert "README.md" in checker.missing_required_docs(tmp_path)


def test_checker_flags_broken_links(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "page.md"
    doc.write_text(
        "[ok](https://example.com) [anchor](#here)\n"
        "[missing](does/not/exist.md)\n"
        "![img](gone.png)\n"
    )
    broken = list(checker.broken_links(doc))
    assert broken == [(2, "does/not/exist.md"), (3, "gone.png")]
    assert checker.main([str(doc)]) == 1


def test_checker_accepts_anchored_relative_links(tmp_path):
    checker = _load_checker()
    (tmp_path / "other.md").write_text("# hi\n")
    doc = tmp_path / "page.md"
    doc.write_text("[sect](other.md#section)\n")
    assert list(checker.broken_links(doc)) == []
