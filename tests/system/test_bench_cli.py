"""Tests for the ``repro bench`` throughput microbenchmark command."""

import json

from repro.bench import append_record, run_benchmark
from repro.cli import main as cli_main


def test_run_benchmark_record_shape():
    record = run_benchmark(
        protocols=("baseline",), engines=("compiled",),
        scale=4096, accesses=50, rounds=1,
    )
    entry = record["measurements"]["baseline/compiled"]
    assert entry["executed"] == 50 * 32
    assert entry["accesses_per_sec"] > 0
    assert record["workload"] == "facesim"


def test_bench_record_is_attributable():
    """Timestamp read at measurement time (not import time) + git SHA."""
    import calendar
    import re
    import time

    before = time.time()
    record = run_benchmark(
        protocols=("baseline",), engines=("compiled",),
        scale=4096, accesses=30, rounds=1,
    )
    after = time.time()
    # The timestamp is UTC; timegm is mktime's timezone-ignorant inverse.
    stamp = calendar.timegm(time.strptime(record["timestamp"], "%Y-%m-%dT%H:%M:%SZ"))
    assert before - 1 <= stamp <= after + 1
    # This test runs from a git checkout, so the SHA must be present.
    assert record["git_sha"] is not None
    assert re.fullmatch(r"[0-9a-f]{40}", record["git_sha"])


def test_benchmark_sampled_records_speedup():
    record = run_benchmark(
        protocols=("baseline",), engines=("compiled",),
        scale=4096, accesses=200, rounds=1, sampled=True,
        sample_plan="units=4,detail=20,warmup=10",
    )
    assert "baseline/sampled" in record["measurements"]
    assert record["measurements"]["baseline/sampled"]["executed"] == 200 * 32
    assert record["sampled_speedup_baseline"] > 0


def test_benchmark_reports_engine_speedup():
    record = run_benchmark(
        protocols=("baseline",), engines=("compiled", "object"),
        scale=4096, accesses=50, rounds=1,
    )
    assert "speedup_baseline_compiled_vs_object" in record
    assert record["speedup_baseline_compiled_vs_object"] > 0


def test_append_record_creates_and_appends(tmp_path):
    output = tmp_path / "BENCH_throughput.json"
    append_record({"a": 1}, output)
    append_record({"b": 2}, output)
    history = json.loads(output.read_text())
    assert history == [{"a": 1}, {"b": 2}]


def test_append_record_preserves_corrupt_history(tmp_path, capsys):
    output = tmp_path / "BENCH_throughput.json"
    output.write_text("{not json")
    append_record({"a": 1}, output)
    assert json.loads(output.read_text()) == [{"a": 1}]
    backup = tmp_path / "BENCH_throughput.json.corrupt"
    assert backup.read_text() == "{not json"


def test_cli_bench_subcommand(tmp_path, capsys):
    output = tmp_path / "bench.json"
    exit_code = cli_main([
        "bench", "--scale", "4096", "--accesses", "30", "--rounds", "1",
        "--protocols", "baseline", "--engines", "compiled",
        "--output", str(output),
    ])
    assert exit_code == 0
    history = json.loads(output.read_text())
    assert len(history) == 1
    assert "baseline/compiled" in history[0]["measurements"]
