"""Tests for the ``repro bench`` throughput microbenchmark command."""

import json

from repro.bench import append_record, run_benchmark
from repro.cli import main as cli_main


def test_run_benchmark_record_shape():
    record = run_benchmark(
        protocols=("baseline",), engines=("compiled",),
        scale=4096, accesses=50, rounds=1,
    )
    entry = record["measurements"]["baseline/compiled"]
    assert entry["executed"] == 50 * 32
    assert entry["accesses_per_sec"] > 0
    assert record["workload"] == "facesim"


def test_benchmark_reports_engine_speedup():
    record = run_benchmark(
        protocols=("baseline",), engines=("compiled", "object"),
        scale=4096, accesses=50, rounds=1,
    )
    assert "speedup_baseline_compiled_vs_object" in record
    assert record["speedup_baseline_compiled_vs_object"] > 0


def test_append_record_creates_and_appends(tmp_path):
    output = tmp_path / "BENCH_throughput.json"
    append_record({"a": 1}, output)
    append_record({"b": 2}, output)
    history = json.loads(output.read_text())
    assert history == [{"a": 1}, {"b": 2}]


def test_append_record_preserves_corrupt_history(tmp_path, capsys):
    output = tmp_path / "BENCH_throughput.json"
    output.write_text("{not json")
    append_record({"a": 1}, output)
    assert json.loads(output.read_text()) == [{"a": 1}]
    backup = tmp_path / "BENCH_throughput.json.corrupt"
    assert backup.read_text() == "{not json"


def test_cli_bench_subcommand(tmp_path, capsys):
    output = tmp_path / "bench.json"
    exit_code = cli_main([
        "bench", "--scale", "4096", "--accesses", "30", "--rounds", "1",
        "--protocols", "baseline", "--engines", "compiled",
        "--output", str(output),
    ])
    assert exit_code == 0
    history = json.loads(output.read_text())
    assert len(history) == 1
    assert "baseline/compiled" in history[0]["measurements"]
