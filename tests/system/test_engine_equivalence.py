"""Engine equivalence: every registered engine against the reference engine.

The ``object`` engine is the semantic reference (the seed-style
one-``MemoryAccess``-at-a-time path).  Every *exact* engine in the registry
must match it bit for bit -- every reported counter, and the derived floats,
which are sensitive to operation order.  *Sampling* engines
(``supports_sampling``) cannot be bit-identical by design; they instead
prove that the exact run's value lies inside every reported confidence
interval (the same containment contract ``tools/check_sampling.py``
validates at full width).

The matrix runs over the registry (``engines.names()``) crossed with the
three workload frontends -- synthetic registry benchmarks, composed
scenarios, and recorded trace-directory replays -- so a newly registered
engine is pulled into the proof automatically.
"""

import importlib.util
from pathlib import Path

import pytest

from repro import engines
from repro.stats.sampling import SamplingPlan
from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.compiled import compile_trace
from repro.workloads.registry import make_workload
from repro.workloads.scenario import build_workload
from repro.workloads.trace_io import record_workload

REPO_ROOT = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "check_sampling", REPO_ROOT / "tools" / "check_sampling.py"
)
check_sampling = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_sampling)

SCALE = 1024
ACCESSES = 300
WARMUP = 100

REFERENCE_ENGINE = "object"

#: Containment plan for sampling engines in the workload-kind matrix: wide
#: on purpose (99% confidence + bias floor) -- the matrix proves the
#: contract holds on every frontend, tools/check_sampling.py measures how
#: tight the intervals are.
SAMPLING_PLAN = SamplingPlan(
    num_units=3, detail=40, warmup=25, confidence=0.99, bias_floor=0.05, seed=7
)

WORKLOAD_KINDS = ("synthetic", "scenario", "trace-replay")


def exact_engine_names():
    """Registered engines that promise bit-exact statistics."""
    return [
        name for name in engines.names() if not engines.get(name).supports_sampling
    ]


def engines_under_test():
    """Exact engines compared against the reference (which needs no self-test)."""
    return [name for name in exact_engine_names() if name != REFERENCE_ENGINE]


#: Reference runs are deterministic; share one per (protocol, warmup) so the
#: slowest engine is not re-simulated for every parametrized comparison.
_reference_cache = {}


def run_engine(protocol: str, engine: str, *, warmup: int = 0, prewarm: bool = True,
               sample_plan=None):
    config = SystemConfig.quad_socket(protocol=protocol).scaled(SCALE)
    system = NumaSystem(config)
    workload = make_workload(
        "facesim", scale=SCALE, accesses_per_thread=ACCESSES,
        num_threads=config.total_cores,
    )
    simulator = Simulator(system, workload, engine=engine, sample_plan=sample_plan)
    result = simulator.run(prewarm=prewarm, warmup_accesses_per_core=warmup)
    return result


def reference_run(protocol: str, *, warmup: int = 0):
    key = (protocol, warmup)
    if key not in _reference_cache:
        _reference_cache[key] = run_engine(protocol, REFERENCE_ENGINE, warmup=warmup)
    return _reference_cache[key]


def assert_bit_identical(reference, other):
    assert other.accesses_executed == reference.accesses_executed
    assert other.inter_socket_bytes == reference.inter_socket_bytes
    # Exact float equality is intended: same operation order, same results.
    assert other.total_time_ns == reference.total_time_ns
    assert other.stats.as_dict() == reference.stats.as_dict()
    assert other.stats.core_finish_ns == reference.stats.core_finish_ns


# ----------------------------------------------------------------------
# Exact engines x coherence designs (bit-identical)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", engines_under_test())
@pytest.mark.parametrize("protocol", ["baseline", "c3d"])
def test_exact_engines_produce_identical_statistics(protocol, engine):
    reference = reference_run(protocol)
    assert_bit_identical(reference, run_engine(protocol, engine))


@pytest.mark.parametrize("engine", engines_under_test())
@pytest.mark.parametrize("protocol", ["baseline", "c3d"])
def test_exact_engines_identical_across_warmup_reset(protocol, engine):
    """The warm-up phase boundary (stats reset) must not diverge either."""
    reference = reference_run(protocol, warmup=WARMUP)
    other = run_engine(protocol, engine, warmup=WARMUP)
    assert other.stats.as_dict() == reference.stats.as_dict()
    assert other.inter_socket_bytes == reference.inter_socket_bytes


@pytest.mark.parametrize("engine", engines_under_test())
@pytest.mark.parametrize("protocol", ["full-dir", "snoopy", "c3d-full-dir"])
def test_exact_engines_identical_for_other_designs(protocol, engine):
    """The remaining evaluated designs ride on the same access path."""
    reference = reference_run(protocol)
    other = run_engine(protocol, engine)
    assert other.stats.as_dict() == reference.stats.as_dict()
    assert other.inter_socket_bytes == reference.inter_socket_bytes


# ----------------------------------------------------------------------
# Every registered engine x every workload frontend
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def recorded_trace_dir(tmp_path_factory):
    """A facesim workload recorded to a trace directory (replayed below)."""
    config = SystemConfig.dual_socket(num_sockets=2, cores_per_socket=2).scaled(SCALE)
    workload = make_workload(
        "facesim", scale=SCALE, accesses_per_thread=ACCESSES,
        num_threads=config.total_cores, seed=11,
    )
    trace_dir = tmp_path_factory.mktemp("engine-matrix") / "facesim"
    record_workload(workload, trace_dir, trace_format="bin")
    return str(trace_dir)


def _matrix_workload(kind: str, config, trace_dir: str):
    if kind == "synthetic":
        return make_workload(
            "facesim", scale=SCALE, accesses_per_thread=ACCESSES,
            num_threads=config.total_cores, seed=11,
        )
    if kind == "scenario":
        return build_workload(
            num_sockets=config.num_sockets,
            cores_per_socket=config.cores_per_socket,
            workload="facesim", trace_dir=None, scenario="het-dual",
            scale=SCALE, accesses_per_thread=ACCESSES, seed=11,
        )
    assert kind == "trace-replay"
    return build_workload(
        num_sockets=config.num_sockets,
        cores_per_socket=config.cores_per_socket,
        workload="facesim", trace_dir=trace_dir, scenario=None,
        scale=SCALE, accesses_per_thread=ACCESSES, seed=11,
    )


def _run_matrix(kind: str, engine: str, trace_dir: str, sample_plan=None):
    config = SystemConfig.dual_socket(
        protocol="c3d", num_sockets=2, cores_per_socket=2
    ).scaled(SCALE)
    system = NumaSystem(config)
    workload = _matrix_workload(kind, config, trace_dir)
    simulator = Simulator(system, workload, engine=engine, sample_plan=sample_plan)
    result = simulator.run(prewarm=True)
    return result, system


@pytest.fixture(scope="module")
def matrix_references(recorded_trace_dir):
    """One shared reference run per workload frontend (deterministic)."""
    return {
        kind: _run_matrix(kind, REFERENCE_ENGINE, recorded_trace_dir)[0]
        for kind in WORKLOAD_KINDS
    }


def matrix_engines():
    """Every registered engine except the reference (it backs the fixture)."""
    return [name for name in engines.names() if name != REFERENCE_ENGINE]


@pytest.mark.parametrize("engine", matrix_engines())
@pytest.mark.parametrize("kind", WORKLOAD_KINDS)
def test_engine_matrix_over_workload_frontends(kind, engine, recorded_trace_dir,
                                               matrix_references):
    reference = matrix_references[kind]
    engine_cls = engines.get(engine)
    if engine_cls.supports_sampling:
        sampled, system = _run_matrix(
            kind, engine, recorded_trace_dir, sample_plan=SAMPLING_PLAN
        )
        assert system.check_invariants() == []
        summary = sampled.stats.sampling
        assert summary is not None and summary.metrics
        failures = check_sampling.check_containment(reference.stats, sampled.stats)
        assert failures == []
        assert summary.covered_accesses == reference.accesses_executed
    else:
        result, system = _run_matrix(kind, engine, recorded_trace_dir)
        assert system.check_invariants() == []
        assert_bit_identical(reference, result)


# ----------------------------------------------------------------------
# Trace compilation (the representation behind supports_trace_compile)
# ----------------------------------------------------------------------


def test_compiled_trace_matches_stream():
    """compile_trace materialises exactly the stream() access sequence."""
    workload = make_workload("facesim", scale=SCALE, accesses_per_thread=257)
    trace = compile_trace(workload, 3)
    stream = list(workload.stream(3))
    assert trace.length == len(stream) == 257
    assert trace.addrs == [a.addr for a in stream]
    assert trace.writes == [a.is_write for a in stream]
    assert trace.gaps == [a.gap for a in stream]
    block_size = workload.layout.block_size
    page_size = workload.layout.page_size
    assert trace.blocks == [a.addr // block_size for a in stream]
    assert trace.pages == [a.addr // page_size for a in stream]


def test_generic_compile_fallback_matches_vectorised():
    """Workloads without a vectorised compiler go through stream() draining."""
    workload = make_workload("facesim", scale=SCALE, accesses_per_thread=128)

    class Plain:
        num_threads = workload.num_threads
        layout = workload.layout

        def stream(self, thread_id):
            return workload.stream(thread_id)

    fast = compile_trace(workload, 0)
    slow = compile_trace(Plain(), 0)
    assert fast.addrs == slow.addrs
    assert fast.writes == slow.writes
    assert fast.gaps == slow.gaps
    assert fast.blocks == slow.blocks
    assert fast.pages == slow.pages
