"""Golden equivalence: the compiled engine must match the object engine.

The compiled (array-backed) engine is a pure performance transformation of
the legacy object-stream engine: same access interleaving, same architectural
effects, same statistics -- bit for bit.  These tests run a small facesim
workload through both engines and assert that every reported counter (and
the derived floats, which are sensitive to operation order) is identical.
"""

import pytest

from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.compiled import compile_trace
from repro.workloads.registry import make_workload

SCALE = 1024
ACCESSES = 300
WARMUP = 100


def run_engine(protocol: str, engine: str, *, warmup: int = 0, prewarm: bool = True):
    config = SystemConfig.quad_socket(protocol=protocol).scaled(SCALE)
    system = NumaSystem(config)
    workload = make_workload(
        "facesim", scale=SCALE, accesses_per_thread=ACCESSES,
        num_threads=config.total_cores,
    )
    simulator = Simulator(system, workload, engine=engine)
    result = simulator.run(prewarm=prewarm, warmup_accesses_per_core=warmup)
    return result


@pytest.mark.parametrize("protocol", ["baseline", "c3d"])
def test_engines_produce_identical_statistics(protocol):
    obj = run_engine(protocol, "object")
    cmp = run_engine(protocol, "compiled")

    assert obj.accesses_executed == cmp.accesses_executed
    assert obj.inter_socket_bytes == cmp.inter_socket_bytes
    assert obj.total_time_ns == cmp.total_time_ns  # exact: same float op order
    assert obj.stats.as_dict() == cmp.stats.as_dict()
    assert obj.stats.core_finish_ns == cmp.stats.core_finish_ns


@pytest.mark.parametrize("protocol", ["baseline", "c3d"])
def test_engines_identical_across_warmup_reset(protocol):
    """The warm-up phase boundary (stats reset) must not diverge either."""
    obj = run_engine(protocol, "object", warmup=WARMUP)
    cmp = run_engine(protocol, "compiled", warmup=WARMUP)
    assert obj.stats.as_dict() == cmp.stats.as_dict()
    assert obj.inter_socket_bytes == cmp.inter_socket_bytes


@pytest.mark.parametrize("protocol", ["full-dir", "snoopy", "c3d-full-dir"])
def test_engines_identical_for_other_designs(protocol):
    """The remaining evaluated designs ride on the same access path."""
    obj = run_engine(protocol, "object")
    cmp = run_engine(protocol, "compiled")
    assert obj.stats.as_dict() == cmp.stats.as_dict()
    assert obj.inter_socket_bytes == cmp.inter_socket_bytes


def test_compiled_trace_matches_stream():
    """compile_trace materialises exactly the stream() access sequence."""
    workload = make_workload("facesim", scale=SCALE, accesses_per_thread=257)
    trace = compile_trace(workload, 3)
    stream = list(workload.stream(3))
    assert trace.length == len(stream) == 257
    assert trace.addrs == [a.addr for a in stream]
    assert trace.writes == [a.is_write for a in stream]
    assert trace.gaps == [a.gap for a in stream]
    block_size = workload.layout.block_size
    page_size = workload.layout.page_size
    assert trace.blocks == [a.addr // block_size for a in stream]
    assert trace.pages == [a.addr // page_size for a in stream]


def test_generic_compile_fallback_matches_vectorised():
    """Workloads without a vectorised compiler go through stream() draining."""
    workload = make_workload("facesim", scale=SCALE, accesses_per_thread=128)

    class Plain:
        num_threads = workload.num_threads
        layout = workload.layout

        def stream(self, thread_id):
            return workload.stream(thread_id)

    fast = compile_trace(workload, 0)
    slow = compile_trace(Plain(), 0)
    assert fast.addrs == slow.addrs
    assert fast.writes == slow.writes
    assert fast.gaps == slow.gaps
    assert fast.blocks == slow.blocks
    assert fast.pages == slow.pages
