"""Tests for the Table II configuration dataclasses."""

import pytest

from repro.system.config import (
    PROTOCOL_NAMES,
    CacheConfig,
    DRAMCacheConfig,
    SystemConfig,
    cycles_to_ns,
)


def test_defaults_match_table_ii():
    config = SystemConfig.quad_socket()
    assert config.num_sockets == 4
    assert config.cores_per_socket == 8
    assert config.total_cores == 32
    assert config.l1.size_bytes == 64 * 1024
    assert config.l1.associativity == 8
    assert config.llc.size_bytes == 16 * 1024 * 1024
    assert config.llc.associativity == 16
    assert config.dram_cache.size_bytes == 1 << 30
    assert config.dram_cache.latency_ns == 40.0
    assert config.memory.latency_ns == 50.0
    assert config.memory.channels == 2
    assert config.interconnect.hop_latency_ns == 20.0
    assert config.interconnect.topology == "ring"
    assert config.interconnect.control_packet_bytes == 16
    assert config.interconnect.data_packet_bytes == 80
    assert config.processor.clock_ghz == 3.0
    assert config.processor.store_buffer_entries == 32


def test_dual_socket_configuration():
    config = SystemConfig.dual_socket()
    assert config.num_sockets == 2
    assert config.cores_per_socket == 16
    assert config.total_cores == 32
    assert config.interconnect.topology == "p2p"


def test_cycles_to_ns():
    assert cycles_to_ns(3) == pytest.approx(1.0)
    assert cycles_to_ns(10) == pytest.approx(10 / 3)


def test_core_to_socket_mapping():
    config = SystemConfig.quad_socket()
    assert config.socket_of_core(0) == 0
    assert config.socket_of_core(7) == 0
    assert config.socket_of_core(8) == 1
    assert config.local_core_index(9) == 1


def test_scaling_divides_capacities_and_keeps_latencies():
    config = SystemConfig.quad_socket().scaled(64)
    assert config.llc.size_bytes == 16 * 1024 * 1024 // 64
    assert config.dram_cache.size_bytes == (1 << 30) // 64
    assert config.memory.latency_ns == 50.0
    assert config.dram_cache.latency_ns == 40.0
    assert SystemConfig.quad_socket().scaled(1) == SystemConfig.quad_socket()


def test_scaling_respects_floors():
    config = SystemConfig.quad_socket().scaled(1 << 20)
    assert config.l1.size_bytes >= 4 * 1024
    assert config.llc.size_bytes >= 64 * 1024
    with pytest.raises(ValueError):
        SystemConfig.quad_socket().scaled(0)


def test_with_protocol_and_idealisation():
    config = SystemConfig.quad_socket(protocol="baseline")
    c3d = config.with_protocol("c3d")
    assert c3d.protocol == "c3d"
    ideal = config.with_idealisation(zero_qpi_latency=True, infinite_memory_bandwidth=True)
    assert ideal.interconnect.zero_latency
    assert ideal.memory.infinite_bandwidth
    assert not ideal.interconnect.infinite_bandwidth


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        SystemConfig(protocol="mesi-magic")
    assert set(PROTOCOL_NAMES) == {"baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir"}


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        SystemConfig(num_sockets=0)
    with pytest.raises(ValueError):
        SystemConfig(cores_per_socket=0)


def test_describe_and_as_dict():
    config = SystemConfig.quad_socket()
    text = config.describe()
    assert "4-socket" in text and "c3d" in text
    flattened = config.as_dict()
    assert flattened["llc"]["size_bytes"] == 16 * 1024 * 1024


def test_cache_config_scaled_floor():
    cache = CacheConfig(1024, 2, 1.0)
    assert cache.scaled(10, floor_bytes=512).size_bytes == 512
    dram = DRAMCacheConfig(size_bytes=1 << 20)
    assert dram.scaled(1).size_bytes == 1 << 20
