"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.workload == "streamcluster"
    assert args.protocol == "c3d"
    assert args.sockets == 4
    assert args.scale == 512


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--protocol", "mystery"])


def test_cli_end_to_end_tiny_run(capsys):
    exit_code = main([
        "--workload", "streamcluster",
        "--protocol", "c3d",
        "--sockets", "2",
        "--cores-per-socket", "1",
        "--scale", "4096",
        "--accesses", "100",
        "--warmup", "20",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "AMAT" in captured.out
    assert "coherence invariants: OK" in captured.out


def test_cli_with_broadcast_filter_and_interleave(capsys):
    exit_code = main([
        "--workload", "mcf",
        "--protocol", "c3d",
        "--sockets", "2",
        "--cores-per-socket", "1",
        "--scale", "4096",
        "--accesses", "100",
        "--warmup", "0",
        "--policy", "interleave",
        "--broadcast-filter",
        "--no-prewarm",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "broadcasts / elided" in captured.out
