"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.workload == "streamcluster"
    assert args.protocol == "c3d"
    assert args.sockets == 4
    assert args.scale == 512


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--protocol", "mystery"])


def test_cli_end_to_end_tiny_run(capsys):
    exit_code = main([
        "--workload", "streamcluster",
        "--protocol", "c3d",
        "--sockets", "2",
        "--cores-per-socket", "1",
        "--scale", "4096",
        "--accesses", "100",
        "--warmup", "20",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "AMAT" in captured.out
    assert "coherence invariants: OK" in captured.out


def test_cli_with_broadcast_filter_and_interleave(capsys):
    exit_code = main([
        "--workload", "mcf",
        "--protocol", "c3d",
        "--sockets", "2",
        "--cores-per-socket", "1",
        "--scale", "4096",
        "--accesses", "100",
        "--warmup", "0",
        "--policy", "interleave",
        "--broadcast-filter",
        "--no-prewarm",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "broadcasts / elided" in captured.out


def test_cli_record_then_replay_identical_report(tmp_path, capsys):
    trace_dir = tmp_path / "rec"
    args = [
        "--workload", "streamcluster",
        "--sockets", "2",
        "--cores-per-socket", "1",
        "--scale", "4096",
        "--accesses", "80",
        "--warmup", "20",
    ]
    assert main(args + ["--record-trace", str(trace_dir)]) == 0
    direct = capsys.readouterr().out
    assert f"recorded : 2 per-core traces (csv) -> {trace_dir}" in direct

    assert main(args + ["--trace-dir", str(trace_dir)]) == 0
    replayed = capsys.readouterr().out
    # Identical statistics block (strip the banner/wall-clock lines).
    def pick(text):
        return [line for line in text.splitlines()
                if ":" in line and "wall clock" not in line
                and "recorded" not in line and "machine" not in line]

    assert pick(direct) == pick(replayed)


def test_cli_scenario_run(capsys):
    exit_code = main([
        "--scenario", "het-dual",
        "--sockets", "2",
        "--cores-per-socket", "1",
        "--scale", "4096",
        "--accesses", "60",
        "--warmup", "0",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "scenario 'het-dual'" in captured.out
    assert "coherence invariants: OK" in captured.out


def test_cli_trace_dir_and_scenario_are_exclusive():
    with pytest.raises(SystemExit):
        main(["--trace-dir", "x", "--scenario", "het-dual"])


def test_cli_record_with_trace_dir_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["--trace-dir", str(tmp_path), "--record-trace", str(tmp_path)])


def test_cli_unknown_scenario_exits_cleanly(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--scenario", "no-such-scenario"])
    assert "unknown scenario" in str(excinfo.value)


def test_cli_bad_trace_dir_exits_cleanly(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(SystemExit) as excinfo:
        main(["--trace-dir", str(tmp_path / "empty")])
    assert "missing manifest.json" in str(excinfo.value)
