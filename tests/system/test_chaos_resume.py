"""Chaos tests: campaigns survive killed workers and injected faults.

Two escalations beyond ``test_campaign_resume``:

* SIGKILL an actual ``repro campaign run`` *process* mid-point (no
  cooperative shutdown at all) and require the next invocation to resume to
  bit-identical merged statistics.
* Run a whole campaign under an injected fault plan (transient worker
  crashes plus one poison point) and require the surviving points' merged
  statistics to be bit-identical to a fault-free run -- the tentpole
  invariant of docs/robustness.md.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.campaign import (
    CampaignSpec,
    campaign_status,
    merged_point_stats,
    run_campaign,
)
from repro.experiments.runner import FailurePolicy, sweep_point_key
from repro.stats.store import ResultsStore
from repro.testing import faults
from repro.testing.faults import FaultPlan

SPEC_DICT = {
    "name": "chaos-check",
    "settings": {
        "scale": 4096,
        "accesses_per_thread": 150,
        "warmup_accesses_per_thread": 50,
        "num_sockets": 2,
        "cores_per_socket": 1,
    },
    "sweeps": [
        {
            "protocols": ["baseline", "c3d"],
            "workloads": ["facesim", "streamcluster"],
            "topologies": [{"sockets": 2, "cores_per_socket": 1}],
        }
    ],
}

SPEC = CampaignSpec.from_dict(SPEC_DICT)


def test_sigkilled_campaign_resumes_bit_identically(tmp_path):
    """Kill -9 a live `repro campaign run` mid-point; resume must converge."""
    points = SPEC.expand()
    assert len(points) == 4

    cold_store = ResultsStore(tmp_path / "cold")
    run_campaign(SPEC, cold_store, stream=io.StringIO())
    cold_merged = merged_point_stats(SPEC, cold_store)

    spec_path = tmp_path / "chaos.json"
    spec_path.write_text(json.dumps(SPEC_DICT), encoding="utf-8")
    victim_dir = tmp_path / "victim"

    # The 3rd expanded point hangs inside its worker (2 minutes, far beyond
    # the test), so the parent is reliably mid-campaign -- with exactly two
    # completed records on disk -- when the SIGKILL lands.
    hang_point = points[2]
    plan = FaultPlan(
        hang_points=(
            {"workload": hang_point.workload, "protocol": hang_point.protocol},
        ),
        hang_s=120.0,
    )
    env = dict(os.environ)
    env[faults.ENV_VAR] = plan.to_json()
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
         "--store", str(victim_dir)],
        cwd="/root/repo",
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            victim = ResultsStore(victim_dir)
            if len(victim) >= 2:
                break
            time.sleep(0.1)
        else:
            pytest.fail("campaign never persisted its first two points")
    finally:
        # No SIGTERM first: the point is simulating an OOM-kill/power cut.
        process.kill()
        process.wait(timeout=30)

    resumed_store = ResultsStore(victim_dir)
    status = campaign_status(SPEC, resumed_store)
    assert status["points_done"] == 2
    assert status["points_total"] == 4

    # Fresh in-process invocation, no faults installed: finishes the rest.
    summary = run_campaign(SPEC, resumed_store, stream=io.StringIO())
    assert summary.cached_points == 2
    assert summary.executed_points == 2
    assert summary.failed_points == 0

    resumed_merged = merged_point_stats(SPEC, ResultsStore(victim_dir))
    assert resumed_merged.to_json_dict() == cold_merged.to_json_dict()


def test_faulted_campaign_is_bit_identical_over_surviving_points(tmp_path):
    """Crashes + a poison point: survivors must merge exactly like fault-free."""
    points = SPEC.expand()
    poison = points[1]

    clean_store = ResultsStore(tmp_path / "clean")
    run_campaign(SPEC, clean_store, stream=io.StringIO())

    plan = FaultPlan(
        seed=7,
        crash_rate=0.2,        # transient: retries re-roll and recover
        poison=({"workload": poison.workload, "protocol": poison.protocol},),
    )
    chaos_store = ResultsStore(tmp_path / "chaos")
    with faults.injected(plan):
        summary = run_campaign(
            SPEC,
            chaos_store,
            stream=io.StringIO(),
            failure_policy=FailurePolicy(max_attempts=5, backoff_s=0.01, seed=7),
        )
    assert summary.failed_points == 1
    assert summary.executed_points == 3
    assert {f.key for f in summary.failures} == {sweep_point_key(poison)}
    assert [r.key for r in chaos_store.failure_log.records()] == [
        sweep_point_key(poison)
    ]
    status = campaign_status(SPEC, ResultsStore(tmp_path / "chaos"))
    assert status["points_quarantined"] == 1

    # The survivors are bit-identical to their fault-free counterparts...
    chaos_merged = merged_point_stats(
        SPEC, ResultsStore(tmp_path / "chaos"), skip_missing=True
    )
    reference = merged_point_stats(
        CampaignSpec.from_dict({**SPEC_DICT, "name": "clean"}),
        clean_store,
        skip_missing=False,
    )
    # ...which we check by folding the clean store over the same surviving
    # subset (everything except the poison point).
    from repro.stats.counters import SimulationStats

    survivors = SimulationStats()
    for point in points:
        if point == poison:
            continue
        survivors.merge(clean_store.get(sweep_point_key(point)).stats)
    assert chaos_merged.to_json_dict() == survivors.to_json_dict()
    assert reference.to_json_dict() != survivors.to_json_dict()  # sanity

    # A later, fault-free invocation completes the quarantined point and
    # converges to the fault-free aggregate exactly.
    final = run_campaign(SPEC, ResultsStore(tmp_path / "chaos"), stream=io.StringIO())
    assert final.failed_points == 0
    assert merged_point_stats(
        SPEC, ResultsStore(tmp_path / "chaos")
    ).to_json_dict() == merged_point_stats(SPEC, clean_store).to_json_dict()
