"""Statistics-drift guard: a fixed scenario must reproduce golden counters.

The checked-in golden file (``tests/golden/throughput_smoke.json``) holds the
integer statistics of a small facesim run for the ``baseline`` and ``c3d``
designs.  Any change to the simulation model -- caches, protocols, placement,
trace generation, engine -- that alters behaviour shows up as a drift here
and must be accompanied by a deliberate regeneration of the golden file
(``python tests/golden/regen.py``).  Performance-only changes must pass
untouched; CI runs this as part of the tier-1 suite.
"""

import json
from pathlib import Path

import pytest

from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.registry import make_workload

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "throughput_smoke.json"


def load_golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("protocol", ["baseline", "c3d"])
def test_statistics_match_golden(protocol):
    golden = load_golden()
    expected = golden["protocols"][protocol]
    scale = golden["scale"]
    accesses = golden["accesses_per_core"]

    config = SystemConfig.quad_socket(protocol=protocol).scaled(scale)
    system = NumaSystem(config)
    workload = make_workload(
        golden["workload"], scale=scale, accesses_per_thread=accesses,
        num_threads=config.total_cores,
    )
    result = Simulator(system, workload).run(prewarm=True)

    actual = {}
    for name, want in expected.items():
        if name == "accesses_executed":
            actual[name] = result.accesses_executed
        elif name == "inter_socket_bytes":
            actual[name] = result.inter_socket_bytes
        else:
            actual[name] = getattr(result.stats, name)
    drift = {k: (expected[k], actual[k]) for k in expected if expected[k] != actual[k]}
    assert not drift, f"statistics drift vs golden for {protocol}: {drift}"
