"""System tests for the sampled engine (docs/sampling.md).

The contract under test:

* every metric an exact quick run reports lies inside the sampled run's
  confidence interval (the acceptance criterion of the sampling subsystem,
  validated at full width by ``tools/check_sampling.py``),
* sampled runs are deterministic (same plan -> bit-identical statistics),
* fast-forward preserves the coherence invariants for every design,
* the sampled statistics survive the results store bit-identically.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.stats.sampling import SamplingPlan
from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import ENGINES, Simulator
from repro.workloads.registry import make_workload

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_sampling", REPO_ROOT / "tools" / "check_sampling.py"
)
check_sampling = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_sampling)

SCALE = 1024
ACCESSES = 900
WARMUP = 200


def _build(protocol, *, sockets=2, cores_per_socket=2, seed=1):
    base = SystemConfig.dual_socket if sockets == 2 else SystemConfig.quad_socket
    config = base(
        protocol=protocol, num_sockets=sockets, cores_per_socket=cores_per_socket
    ).scaled(SCALE)
    system = NumaSystem(config)
    workload = make_workload(
        "streamcluster", scale=SCALE, accesses_per_thread=ACCESSES + WARMUP,
        num_threads=config.total_cores, seed=seed,
    )
    return system, workload


def _run(protocol, engine, plan=None, **build_kwargs):
    system, workload = _build(protocol, **build_kwargs)
    result = Simulator(system, workload, engine=engine, sample_plan=plan).run(
        warmup_accesses_per_core=WARMUP, prewarm=True
    )
    return result, system


PLAN = SamplingPlan(
    num_units=6, detail=60, warmup=40, confidence=0.99, bias_floor=0.03, seed=5
)


def test_sampled_engine_registered():
    assert "sampled" in ENGINES


@pytest.mark.parametrize("protocol", ["baseline", "snoopy", "full-dir", "c3d",
                                      "c3d-full-dir"])
def test_exact_metrics_inside_sampled_intervals(protocol):
    exact, _ = _run(protocol, "compiled")
    sampled, system = _run(protocol, "sampled", PLAN)

    assert system.check_invariants() == []
    summary = sampled.stats.sampling
    assert summary is not None and summary.metrics
    failures = check_sampling.check_containment(exact.stats, sampled.stats)
    assert failures == []
    # Coverage accounting: the sampled run covered the same measured region.
    assert summary.covered_accesses == exact.accesses_executed
    assert 0 < summary.detail_accesses < summary.covered_accesses
    assert summary.scale > 1.0


def test_sampled_runs_are_deterministic():
    first, _ = _run("c3d", "sampled", PLAN)
    second, _ = _run("c3d", "sampled", PLAN)
    assert first.stats.to_json_dict() == second.stats.to_json_dict()
    assert first.accesses_executed == second.accesses_executed
    assert first.inter_socket_bytes == second.inter_socket_bytes


def test_auto_plan_is_derived_when_absent():
    result, _ = _run("c3d", "sampled")
    summary = result.stats.sampling
    assert summary is not None
    assert summary.plan.min_region() <= ACCESSES
    assert summary.metrics


def test_plan_too_dense_for_region_raises():
    plan = SamplingPlan(num_units=8, detail=200, warmup=100)
    with pytest.raises(ValueError, match="too short"):
        _run("c3d", "sampled", plan)


def test_sample_plan_requires_sampled_engine():
    system, workload = _build("c3d")
    with pytest.raises(ValueError, match="sampled"):
        Simulator(system, workload, engine="compiled", sample_plan=PLAN)


def test_sampled_point_round_trips_through_store(tmp_path):
    from repro.experiments.runner import SweepPoint, run_sweep, sweep_point_key
    from repro.stats.sampling import SampledSimulationStats
    from repro.stats.store import ResultsStore

    point = SweepPoint(
        workload="streamcluster", protocol="c3d", scale=SCALE,
        accesses_per_thread=ACCESSES, warmup_accesses_per_thread=WARMUP,
        num_sockets=2, cores_per_socket=2, seed=1,
        sample_plan=PLAN.to_spec(),
    )
    store = ResultsStore(tmp_path / "store")
    [fresh] = run_sweep([point], store=store)

    reloaded = ResultsStore(tmp_path / "store")
    record = reloaded.get(sweep_point_key(point))
    assert isinstance(record.stats, SampledSimulationStats)
    assert record.stats.to_json_dict() == fresh.stats.to_json_dict()

    # A second sweep over the same point is a pure cache hit.
    [cached] = run_sweep([point], store=reloaded)
    assert cached.stats.to_json_dict() == fresh.stats.to_json_dict()
    assert reloaded.misses == 0


def test_sampled_wall_clock_beats_exact_at_scale():
    """A sparse plan on a longer trace must be measurably faster than exact.

    Uses a single (workload, protocol) pair of the validation harness at its
    default sizes; the harness itself (and ``repro bench --sampled``) checks
    the full quick matrix.  The bar is deliberately modest (>5% faster) to
    stay robust on noisy CI runners.
    """
    import time

    plan = SamplingPlan(num_units=8, detail=60, warmup=30)
    accesses, warmup = 4000, 300

    def run(engine, sample_plan=None):
        config = SystemConfig.quad_socket(protocol="baseline").scaled(SCALE)
        system = NumaSystem(config)
        workload = make_workload(
            "streamcluster", scale=SCALE, accesses_per_thread=accesses + warmup,
            num_threads=config.total_cores, seed=1,
        )
        started = time.perf_counter()
        Simulator(system, workload, engine=engine, sample_plan=sample_plan).run(
            warmup_accesses_per_core=warmup, prewarm=True
        )
        return time.perf_counter() - started

    exact_s = min(run("compiled") for _ in range(2))
    sampled_s = min(run("sampled", plan) for _ in range(2))
    assert sampled_s < exact_s * 0.95, (
        f"sampled {sampled_s:.2f}s not faster than exact {exact_s:.2f}s"
    )
