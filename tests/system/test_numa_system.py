"""Tests for machine assembly and the protocol registry."""


from repro.coherence.baseline import BaselineProtocol
from repro.core.c3d_protocol import C3DProtocol
from repro.system.numa_system import PROTOCOL_REGISTRY, build_system

from ..conftest import block_homed_at, read, tiny_config, tiny_system, write


def test_registry_contains_all_five_designs():
    assert set(PROTOCOL_REGISTRY) == {"baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir"}


def test_build_system_wires_components():
    system = build_system(tiny_config("c3d", num_sockets=2, cores_per_socket=2))
    assert isinstance(system.protocol, C3DProtocol)
    assert len(system.sockets) == 2
    assert len(system.cores) == 4
    assert len(system.directories) == 2
    assert all(sock.protocol is system.protocol for sock in system.sockets)
    assert system.num_cores == 4


def test_baseline_system_has_no_dram_caches():
    system = tiny_system("baseline")
    assert isinstance(system.protocol, BaselineProtocol)
    assert all(sock.dram_cache is None for sock in system.sockets)


def test_dram_cache_clean_flag_follows_protocol():
    assert all(s.dram_cache.clean for s in tiny_system("c3d").sockets)
    assert all(not s.dram_cache.clean for s in tiny_system("full-dir").sockets)


def test_page_classifier_only_built_when_filter_enabled():
    assert tiny_system("c3d").page_classifier is None
    assert tiny_system("c3d", broadcast_filter=True).page_classifier is not None


def test_reset_measurement_preserves_cache_contents():
    system = tiny_system("c3d")
    block = block_homed_at(system, home=1)
    read(system, socket_id=0, block=block)
    assert system.stats.reads == 0 and system.stats.memory_reads == 1
    system.reset_measurement()
    assert system.stats.memory_reads == 0
    assert system.inter_socket_bytes() == 0
    assert system.sockets[0].llc.contains(block)


def test_check_invariants_clean_on_fresh_system():
    assert tiny_system("c3d").check_invariants() == []


def test_check_invariants_detects_swmr_violation():
    system = tiny_system("baseline")
    block = block_homed_at(system, home=0)
    write(system, socket_id=0, block=block)
    # Corrupt the state: force a second socket to also hold the block Modified.
    from repro.caches.block import CacheBlockState

    system.sockets[1].llc.insert(block, CacheBlockState.MODIFIED, dirty=True)
    violations = system.check_invariants()
    assert any("Modified in multiple sockets" in v for v in violations)


def test_check_invariants_detects_dirty_clean_cache():
    system = tiny_system("c3d")
    cache = system.sockets[0].dram_cache
    cache.clean = False           # bypass the write-through policy
    cache.insert(1234, dirty=True)
    cache.clean = True
    violations = system.check_invariants()
    assert any("dirty line" in v for v in violations)


def test_check_invariants_detects_stale_directory_owner():
    system = tiny_system("c3d")
    system.directories[0].set_modified(99, owner=1)
    violations = system.check_invariants()
    assert any("no on-chip copy" in v for v in violations)


def test_socket_of_core_accessor():
    system = tiny_system("c3d", num_sockets=2, cores_per_socket=2)
    assert system.socket_of_core(3).socket_id == 1
    assert system.core(2).core_id == 2
