"""System test: an interrupted campaign resumes and stays bit-identical.

The acceptance scenario of the campaign subsystem: run a quick campaign,
kill it mid-run (here: persist only a prefix of its points, plus a torn
trailing line as a writer killed mid-append would leave), re-invoke it, and
require that (a) only the remaining points execute and (b) the merged
statistics are bit-identical to a never-interrupted cold run.
"""

import io

from repro.experiments.campaign import (
    CampaignSpec,
    campaign_status,
    merged_point_stats,
    run_campaign,
)
from repro.experiments.runner import run_sweep
from repro.stats.store import ResultsStore

SPEC = CampaignSpec.from_dict({
    "name": "resume-check",
    "settings": {
        "scale": 4096,
        "accesses_per_thread": 150,
        "warmup_accesses_per_thread": 50,
        "num_sockets": 2,
        "cores_per_socket": 1,
    },
    "sweeps": [
        {
            "protocols": ["baseline", "c3d"],
            "workloads": ["facesim", "streamcluster"],
            "topologies": [{"sockets": 2, "cores_per_socket": 1}],
        }
    ],
})


def test_interrupted_campaign_resumes_bit_identically(tmp_path):
    points = SPEC.expand()
    assert len(points) == 4

    # --- The reference: one uninterrupted cold run. -----------------------
    cold_store = ResultsStore(tmp_path / "cold")
    cold = run_campaign(SPEC, cold_store, stream=io.StringIO())
    assert (cold.executed_points, cold.cached_points) == (4, 0)
    cold_merged = merged_point_stats(SPEC, cold_store)

    # --- The victim: crashes after completing 2 of 4 points. --------------
    crash_store = ResultsStore(tmp_path / "crashed")
    run_sweep(points[:2], store=crash_store)
    # A writer killed mid-append leaves a torn trailing line in the shard
    # it was writing; the in-flight third point is lost but must not
    # poison the resume.
    torn_shard = crash_store.shard_path("0" * 64)
    with torn_shard.open("a", encoding="utf-8") as handle:
        handle.write('{"params": {"torn-by-cr')

    resumed_store = ResultsStore(tmp_path / "crashed")   # fresh invocation
    status = campaign_status(SPEC, resumed_store)
    assert (status["points_done"], status["points_total"]) == (2, 4)

    resumed = run_campaign(SPEC, resumed_store, stream=io.StringIO())
    # Only the remaining points executed; the completed ones were cache hits.
    assert (resumed.executed_points, resumed.cached_points) == (2, 2)

    # --- Bit-identical aggregate, fold order independent of history. ------
    resumed_merged = merged_point_stats(SPEC, ResultsStore(tmp_path / "crashed"))
    assert resumed_merged.to_json_dict() == cold_merged.to_json_dict()

    # Per-point statistics match too (not just the aggregate).
    for cold_result, resumed_result in zip(cold.results, resumed.results):
        assert cold_result.point == resumed_result.point
        assert (cold_result.stats.to_json_dict()
                == resumed_result.stats.to_json_dict())
        assert cold_result.inter_socket_bytes == resumed_result.inter_socket_bytes


def test_parallel_resume_matches_sequential(tmp_path):
    points = SPEC.expand()
    sequential_store = ResultsStore(tmp_path / "seq")
    run_sweep(points, store=sequential_store)

    parallel_store = ResultsStore(tmp_path / "par")
    run_sweep(points[:1], store=parallel_store)          # partial prefix
    results = run_sweep(points, jobs=2, store=ResultsStore(tmp_path / "par"))
    assert [r.point for r in results] == points
    for seq, par in zip(run_sweep(points, store=sequential_store), results):
        assert seq.stats.to_json_dict() == par.stats.to_json_dict()
