"""Tests for the intra-socket memory path (L1s, LLC, local directory)."""

import pytest

from repro.coherence.messages import ServiceSource

from ..conftest import block_homed_at, tiny_system


def test_l1_miss_llc_hit_path():
    system = tiny_system("baseline")
    socket = system.sockets[0]
    block = block_homed_at(system, home=0)
    socket.access(0.0, 0, block, is_write=False, thread_id=0)
    # A second core reads the same block: L1 miss, LLC hit.
    latency, source = socket.access(0.0, 1, block, is_write=False, thread_id=1)
    assert source is ServiceSource.LLC
    assert system.stats.llc_hits == 1
    assert socket.l1s[1].contains(block)


def test_llc_is_inclusive_of_l1s():
    system = tiny_system("baseline")
    socket = system.sockets[0]
    block = block_homed_at(system, home=0)
    socket.access(0.0, 0, block, is_write=False, thread_id=0)
    llc = socket.llc
    # Evict the block from the LLC; the L1 copy must be back-invalidated.
    for i in range(1, llc.associativity + 1):
        socket.access(0.0, 1, block + i * llc.num_sets, is_write=False, thread_id=1)
    assert not llc.contains(block)
    assert not socket.l1s[0].contains(block)


def test_write_invalidates_peer_l1_copies():
    system = tiny_system("baseline")
    socket = system.sockets[0]
    block = block_homed_at(system, home=0)
    socket.access(0.0, 0, block, is_write=False, thread_id=0)
    socket.access(0.0, 1, block, is_write=False, thread_id=1)
    assert socket.l1s[0].contains(block) and socket.l1s[1].contains(block)
    socket.access(0.0, 1, block, is_write=True, thread_id=1)
    assert not socket.l1s[0].contains(block)
    assert socket.local_directory.owner_of(block) == 1


def test_second_write_by_same_core_is_an_l1_hit():
    system = tiny_system("baseline")
    socket = system.sockets[0]
    block = block_homed_at(system, home=0)
    socket.access(0.0, 0, block, is_write=True, thread_id=0)
    lookups_before = system.stats.directory_lookups
    latency, source = socket.access(0.0, 0, block, is_write=True, thread_id=0)
    assert source is ServiceSource.L1
    assert latency == pytest.approx(system.config.l1.latency_ns)
    assert system.stats.directory_lookups == lookups_before


def test_peer_intervention_charges_extra_latency():
    system = tiny_system("baseline")
    socket = system.sockets[0]
    block = block_homed_at(system, home=0)
    socket.access(0.0, 0, block, is_write=True, thread_id=0)
    latency, source = socket.access(0.0, 1, block, is_write=False, thread_id=1)
    assert source is ServiceSource.LLC
    assert system.stats.llc_peer_hits == 1


def test_invalidate_onchip_and_downgrade():
    system = tiny_system("baseline")
    socket = system.sockets[0]
    block = block_homed_at(system, home=0)
    socket.access(0.0, 0, block, is_write=True, thread_id=0)
    assert socket.downgrade_block(block) is True          # dirty at downgrade time
    assert socket.llc.peek(block).state.value == "S"
    assert socket.invalidate_onchip(block) is True
    assert not socket.llc.contains(block)
    assert socket.invalidate_onchip(block) is False


def test_upgrade_write_on_shared_llc_line_goes_global():
    system = tiny_system("baseline")
    block = block_homed_at(system, home=1)
    socket = system.sockets[0]
    socket.access(0.0, 0, block, is_write=False, thread_id=0)
    upgrades_before = system.stats.upgrades
    socket.access(0.0, 0, block, is_write=True, thread_id=0)
    assert system.stats.upgrades == upgrades_before + 1
    assert socket.llc.peek(block).state.value == "M"
