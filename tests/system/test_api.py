"""The `repro.api` facade: the supported import surface for scripts.

Pins the five verbs, the top-level re-exports, and the deprecation shims
left at the old import sites (docs/architecture.md).
"""

import io

import pytest

import repro
import repro.api as api


def test_package_exports_the_facade():
    assert repro.api is api
    for verb in ("simulate", "analyze", "import_trace", "run_campaign",
                 "open_store"):
        assert verb in repro.__all__ and verb in api.__all__
        assert getattr(repro, verb) is getattr(api, verb)


def test_every_api_export_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None
    assert "SystemConfig" in dir(api)


def test_simulate_round_trip_matches_manual_wiring():
    result = api.simulate(scale=256, accesses_per_thread=200,
                          warmup_accesses_per_core=50)
    config = api.SystemConfig.quad_socket(protocol="c3d").scaled(256)
    workload = api.make_workload("streamcluster", scale=256,
                                 accesses_per_thread=250,
                                 num_threads=config.total_cores)
    system = api.NumaSystem(config)
    manual = api.Simulator(system, workload).run(
        warmup_accesses_per_core=50, prewarm=True
    )
    assert result.stats.to_json_dict() == manual.stats.to_json_dict()
    assert result.total_time_ns == manual.total_time_ns


def test_open_store_and_run_campaign_accept_paths_and_dicts(tmp_path):
    store = api.open_store(tmp_path / "store")
    assert isinstance(store, api.ResultsStore)
    summary = api.run_campaign(
        {
            "name": "api-facade",
            "settings": {
                "scale": 4096,
                "accesses_per_thread": 100,
                "num_sockets": 2,
                "cores_per_socket": 1,
            },
            "sweeps": [
                {
                    "protocols": ["c3d"],
                    "workloads": ["facesim"],
                    "topologies": [{"sockets": 2, "cores_per_socket": 1}],
                }
            ],
        },
        tmp_path / "store",
        stream=io.StringIO(),
    )
    assert summary.executed_points == 1
    assert len(api.open_store(tmp_path / "store")) == 1


def test_analyze_and_import_trace_are_wired(tmp_path):
    workload = api.make_workload("facesim", scale=256,
                                 accesses_per_thread=100, num_threads=2)
    trace_dir = tmp_path / "trace"
    api.record_workload(workload, trace_dir)
    profile = api.analyze(trace_dir)
    assert profile["schema"] == "workload-profile/v1"
    assert profile["total_accesses"] > 0


@pytest.mark.parametrize(
    "module, name",
    [
        ("repro.experiments", "run_campaign"),
        ("repro.experiments", "campaign_status"),
        ("repro.stats", "open_store"),
        ("repro.workloads", "analyze"),
        ("repro.system", "simulate"),
    ],
)
def test_old_import_sites_warn_but_work(module, name):
    import importlib

    with pytest.deprecated_call():
        value = getattr(importlib.import_module(module), name)
    assert callable(value)


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        api.no_such_thing
    with pytest.raises(AttributeError):
        import repro.experiments

        repro.experiments.no_such_thing
