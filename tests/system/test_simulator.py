"""Tests for the trace-driven simulation driver."""


from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.registry import make_workload
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec
from repro.workloads.trace import MemoryAccess

from ..conftest import tiny_config


class ListWorkload:
    """Minimal workload: an explicit list of accesses per thread."""

    def __init__(self, per_thread):
        self.per_thread = per_thread
        self.num_threads = len(per_thread)

    def stream(self, thread_id):
        return iter(self.per_thread[thread_id])


def make_simulator(protocol="c3d", workload=None, **config_kwargs):
    system = NumaSystem(tiny_config(protocol, **config_kwargs))
    if workload is None:
        workload = ListWorkload([[MemoryAccess(addr=i * 64, gap=1) for i in range(50)]])
    return Simulator(system, workload), system


def test_run_executes_all_accesses():
    simulator, system = make_simulator()
    result = simulator.run()
    assert result.accesses_executed == 50
    assert system.stats.reads == 50
    assert result.total_time_ns > 0
    assert result.stats is system.stats


def test_max_accesses_per_core_limits_execution():
    simulator, _system = make_simulator()
    result = simulator.run(max_accesses_per_core=10)
    assert result.accesses_executed == 10


def test_warmup_accesses_are_not_measured():
    simulator, system = make_simulator()
    result = simulator.run(warmup_accesses_per_core=20)
    assert result.accesses_executed == 30
    assert system.stats.reads == 30
    # Warm-up left architectural state behind (caches are warm).
    assert system.sockets[0].llc.occupancy() > 0


def test_cores_interleave_in_time_order():
    accesses = [[MemoryAccess(addr=(t * 1000 + i) * 64, gap=5) for i in range(30)] for t in range(4)]
    simulator, system = make_simulator(workload=ListWorkload(accesses),
                                       num_sockets=2, cores_per_socket=2)
    result = simulator.run()
    assert result.accesses_executed == 120
    finish_times = list(result.stats.core_finish_ns.values())
    assert len(finish_times) == 4
    # All cores did the same amount of similar work; finish times are comparable.
    assert max(finish_times) < 5 * min(finish_times)


def test_prewarm_fills_dram_caches():
    workload = make_workload("streamcluster", scale=4096, accesses_per_thread=5, num_threads=2)
    system = NumaSystem(tiny_config("c3d", num_sockets=2, cores_per_socket=1))
    simulator = Simulator(system, workload)
    inserted = simulator.prewarm_dram_caches()
    assert inserted > 0
    assert system.sockets[0].dram_cache.occupancy() > 0


def test_prewarm_is_noop_for_baseline():
    workload = make_workload("streamcluster", scale=4096, accesses_per_thread=5, num_threads=2)
    system = NumaSystem(tiny_config("baseline", num_sockets=2, cores_per_socket=1))
    assert Simulator(system, workload).prewarm_dram_caches() == 0


def test_prewarm_registers_sharers_for_full_dir():
    workload = make_workload("streamcluster", scale=4096, accesses_per_thread=5, num_threads=2)
    system = NumaSystem(tiny_config("full-dir", num_sockets=2, cores_per_socket=1))
    Simulator(system, workload).prewarm_dram_caches()
    assert sum(len(directory) for directory in system.directories) > 0


def test_ft2_pins_private_pages_to_owner_socket():
    spec = WorkloadSpec(
        name="unit", num_threads=2,
        private_bytes_per_thread=4096, hot_shared_bytes=4096,
        warm_shared_bytes=8192, cold_shared_bytes=0,
        p_private=0.5, p_hot=0.2, p_warm=0.3, p_cold=0.0,
    )
    workload = SyntheticWorkload(spec, accesses_per_thread=5)
    system = NumaSystem(
        tiny_config("c3d", num_sockets=2, cores_per_socket=1, allocation_policy="ft2")
    )
    simulator = Simulator(system, workload)
    simulator.run(max_accesses_per_core=1)
    layout = system.layout
    regions = workload.memory_regions()
    for region in regions:
        page = layout.page_of(region["base"])
        home = system.policy.home_of_page(page)
        if region["owner_thread"] is not None:
            expected = system.config.socket_of_core(region["owner_thread"])
            assert home == expected


def test_ft1_pins_shared_pages_to_socket_zero():
    workload = make_workload("streamcluster", scale=4096, accesses_per_thread=5, num_threads=2)
    system = NumaSystem(
        tiny_config("c3d", num_sockets=2, cores_per_socket=1, allocation_policy="ft1")
    )
    Simulator(system, workload).run(max_accesses_per_core=1)
    pages = workload.serial_init_pages()
    assert pages
    assert all(system.policy.home_of_page(page) == 0 for page in pages[:16])


def test_invariants_hold_after_a_synthetic_run():
    workload = make_workload("facesim", scale=4096, accesses_per_thread=150, num_threads=4)
    for protocol in ("baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir"):
        system = NumaSystem(tiny_config(protocol, num_sockets=2, cores_per_socket=2))
        Simulator(system, workload).run()
        assert system.check_invariants() == [], protocol
