"""Golden replay: recorded traces must reproduce the original run bit for bit.

The acceptance property of the trace frontend: a synthetic workload recorded
to a trace directory and replayed through :class:`TraceDirWorkload` yields
**bit-identical** :class:`SimulationStats` to the direct run, on both the
``compiled`` and the ``object`` engine.  This holds because the trace files
preserve the exact access sequences and the manifest preserves the
``memory_regions`` hint that drives first-touch placement and DRAM-cache
pre-warming.
"""

import pytest

from repro.experiments.runner import SweepPoint, run_sweep
from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.registry import make_workload
from repro.workloads.scenario import build_scenario_workload
from repro.workloads.trace_io import TraceDirWorkload, record_workload

SCALE = 1024
ACCESSES = 250
WARMUP = 50


def run(workload, engine, *, protocol="c3d", policy="first_touch"):
    config = SystemConfig.quad_socket(
        protocol=protocol, allocation_policy=policy
    ).scaled(SCALE)
    system = NumaSystem(config)
    simulator = Simulator(system, workload, engine=engine)
    return simulator.run(prewarm=True, warmup_accesses_per_core=WARMUP)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    workload = make_workload(
        "facesim", scale=SCALE, accesses_per_thread=ACCESSES + WARMUP, num_threads=32
    )
    directory = tmp_path_factory.mktemp("traces") / "facesim"
    record_workload(workload, directory, trace_format="bin.gz")
    return workload, directory


@pytest.mark.parametrize("engine", ["compiled", "object"])
def test_replay_bit_identical(recorded, engine):
    workload, directory = recorded
    direct = run(workload, engine)
    replayed = run(TraceDirWorkload(directory), engine)
    assert replayed.stats.as_dict() == direct.stats.as_dict()
    assert replayed.total_time_ns == direct.total_time_ns
    assert replayed.inter_socket_bytes == direct.inter_socket_bytes
    assert replayed.accesses_executed == direct.accesses_executed
    assert replayed.stats.core_finish_ns == direct.stats.core_finish_ns


def test_replay_bit_identical_under_ft1(recorded):
    """serial_init_pages derived from the manifest matches the original."""
    workload, directory = recorded
    direct = run(workload, "compiled", policy="ft1")
    replayed = run(TraceDirWorkload(directory), "compiled", policy="ft1")
    assert replayed.stats.as_dict() == direct.stats.as_dict()


def test_replay_engines_agree_with_each_other(recorded):
    _workload, directory = recorded
    compiled = run(TraceDirWorkload(directory), "compiled")
    legacy = run(TraceDirWorkload(directory), "object")
    assert compiled.stats.as_dict() == legacy.stats.as_dict()
    assert compiled.total_time_ns == legacy.total_time_ns


def test_scenario_engines_agree():
    """Composed scenario workloads are engine-equivalent too."""

    def run_scenario(engine):
        workload = build_scenario_workload(
            "het-quad", num_sockets=4, cores_per_socket=8, scale=SCALE,
            accesses_per_thread=120,
        )
        return run(workload, engine)

    compiled = run_scenario("compiled")
    legacy = run_scenario("object")
    assert compiled.stats.as_dict() == legacy.stats.as_dict()
    assert compiled.inter_socket_bytes == legacy.inter_socket_bytes


def test_sweep_runner_accepts_trace_dir_and_scenario(recorded):
    _workload, directory = recorded
    points = [
        SweepPoint(trace_dir=str(directory), protocol="c3d", scale=SCALE,
                   accesses_per_thread=ACCESSES, warmup_accesses_per_thread=WARMUP),
        SweepPoint(scenario="het-quad", protocol="c3d", scale=SCALE,
                   accesses_per_thread=80, warmup_accesses_per_thread=0),
    ]
    results = run_sweep(points)
    assert results[0].accesses_executed == 32 * ACCESSES
    assert results[1].accesses_executed == 32 * 80
    with pytest.raises(ValueError, match="exclusive"):
        run_sweep([SweepPoint(trace_dir=str(directory), scenario="het-quad")])
