"""Shared fixtures and helpers for the test suite.

Most protocol-level tests want a *tiny* machine whose caches can be filled
and spilled with a handful of accesses, so the fixtures here build scaled-down
configurations explicitly (rather than via ``SystemConfig.scaled``, which is
reserved for the experiment harness).
"""

from __future__ import annotations

import pytest

from repro.system.config import (
    CacheConfig,
    DirectoryConfig,
    DRAMCacheConfig,
    InterconnectConfig,
    MemoryConfig,
    ProcessorConfig,
    SystemConfig,
)
from repro.system.numa_system import NumaSystem


def tiny_config(
    protocol: str = "c3d",
    *,
    num_sockets: int = 2,
    cores_per_socket: int = 2,
    llc_bytes: int = 4096,
    l1_bytes: int = 1024,
    dram_cache_bytes: int = 16 * 1024,
    allocation_policy: str = "interleave",
    topology: str = "p2p",
    broadcast_filter: bool = False,
) -> SystemConfig:
    """A machine small enough that a few accesses exercise every structure."""
    return SystemConfig(
        num_sockets=num_sockets,
        cores_per_socket=cores_per_socket,
        protocol=protocol,
        allocation_policy=allocation_policy,
        broadcast_filter=broadcast_filter,
        l1=CacheConfig(l1_bytes, 2, 1.0),
        llc=CacheConfig(llc_bytes, 4, 6.0),
        dram_cache=DRAMCacheConfig(size_bytes=dram_cache_bytes, latency_ns=40.0,
                                   predictor_entries=64, region_size=1024),
        memory=MemoryConfig(latency_ns=50.0, channels=2),
        interconnect=InterconnectConfig(topology=topology, hop_latency_ns=20.0),
        directory=DirectoryConfig(),
        processor=ProcessorConfig(),
    )


def tiny_system(protocol: str = "c3d", **kwargs) -> NumaSystem:
    """Build a :class:`NumaSystem` from :func:`tiny_config`."""
    return NumaSystem(tiny_config(protocol, **kwargs))


@pytest.fixture
def c3d_system() -> NumaSystem:
    return tiny_system("c3d")


@pytest.fixture
def baseline_system() -> NumaSystem:
    return tiny_system("baseline")


@pytest.fixture
def full_dir_system() -> NumaSystem:
    return tiny_system("full-dir")


@pytest.fixture
def snoopy_system() -> NumaSystem:
    return tiny_system("snoopy")


def block_homed_at(system: NumaSystem, home: int, index: int = 0) -> int:
    """Return the ``index``-th block number whose home socket is ``home``.

    With the interleave policy, the home of a block is its page number modulo
    the socket count, so suitable blocks can be constructed directly.
    """
    layout = system.layout
    blocks_per_page = layout.blocks_per_page()
    page = home + index * system.num_sockets
    return page * blocks_per_page


def read(system: NumaSystem, socket_id: int, block: int, *, core: int = 0, now: float = 0.0):
    """Issue a demand read through the socket's full access path."""
    return system.sockets[socket_id].access(
        now, core, block, is_write=False, thread_id=core
    )


def write(system: NumaSystem, socket_id: int, block: int, *, core: int = 0, now: float = 0.0):
    """Issue a demand write through the socket's full access path."""
    return system.sockets[socket_id].access(
        now, core, block, is_write=True, thread_id=core
    )
