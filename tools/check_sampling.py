#!/usr/bin/env python3
"""Validate the sampled engine against exact simulation.

For every (workload, protocol) pair of a quick configuration this harness
runs the same trace twice -- once exactly (``compiled`` engine), once with
statistical sampling (``sampled`` engine) -- and asserts that **every metric
the sampled run reports contains the exact run's value inside its confidence
interval**.  It also reports the wall-clock ratio, which is what sampling is
for.  See ``docs/sampling.md`` for the error-bound semantics.

Usage::

    PYTHONPATH=src python tools/check_sampling.py             # quick defaults
    PYTHONPATH=src python tools/check_sampling.py --accesses 3000 \
        --plan units=8,detail=100,warmup=50 --protocols baseline c3d

Exits 0 when every metric of every pair is contained, 1 otherwise (listing
each violation).  Used by ``tests/system/test_sampling.py`` and runnable
standalone before relying on a sampled campaign.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.stats.sampling import SamplingPlan
from repro.system.config import SystemConfig
from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.workloads.registry import make_workload

DEFAULT_WORKLOADS = ("streamcluster", "facesim")
DEFAULT_PROTOCOLS = ("baseline", "c3d")

#: Exact-run accessors for every metric the sampled engine estimates.
EXACT_METRICS = {
    "amat_ns": lambda stats: stats.amat_ns(),
    "write_latency_ns": lambda stats: stats.write_latency.mean,
    "llc_miss_latency_ns": lambda stats: stats.llc_miss_latency.mean,
    "l1_hit_rate": lambda stats: stats.l1_hit_rate(),
    "llc_hit_rate": lambda stats: stats.llc_hit_rate(),
    "dram_cache_hit_rate": lambda stats: stats.dram_cache_hit_rate(),
    "remote_memory_fraction": lambda stats: stats.remote_memory_fraction(),
}


def run_pair(
    workload: str,
    protocol: str,
    *,
    scale: int,
    accesses: int,
    warmup: int,
    sockets: int,
    cores_per_socket: int,
    plan: Optional[SamplingPlan],
    seed: Optional[int],
):
    """Run one (workload, protocol) pair exactly and sampled.

    Returns ``(exact_result, sampled_result, exact_seconds, sampled_seconds,
    invariant_violations)``.
    """

    def build():
        base = (
            SystemConfig.dual_socket if sockets == 2 else SystemConfig.quad_socket
        )
        config = base(
            protocol=protocol,
            num_sockets=sockets,
            cores_per_socket=cores_per_socket,
        ).scaled(scale)
        system = NumaSystem(config)
        generator = make_workload(
            workload,
            scale=scale,
            accesses_per_thread=accesses + warmup,
            num_threads=config.total_cores,
            seed=seed,
        )
        return system, generator

    system, generator = build()
    started = time.perf_counter()
    exact = Simulator(system, generator, engine="compiled").run(
        warmup_accesses_per_core=warmup, prewarm=True
    )
    exact_seconds = time.perf_counter() - started

    system, generator = build()
    started = time.perf_counter()
    sampled = Simulator(
        system, generator, engine="sampled", sample_plan=plan
    ).run(warmup_accesses_per_core=warmup, prewarm=True)
    sampled_seconds = time.perf_counter() - started

    return exact, sampled, exact_seconds, sampled_seconds, system.check_invariants()


def check_containment(exact_stats, sampled_stats) -> List[str]:
    """Return one message per metric whose exact value escapes its interval."""
    failures: List[str] = []
    summary = sampled_stats.sampling
    if summary is None or not summary.metrics:
        return ["sampled run produced no metric estimates"]
    for name, estimate in summary.metrics.items():
        exact_value = EXACT_METRICS[name](exact_stats)
        if not estimate.contains(exact_value):
            failures.append(
                f"{name}: exact {exact_value:.6g} outside "
                f"[{estimate.lower:.6g}, {estimate.upper:.6g}] "
                f"(mean {estimate.mean:.6g} +/- {estimate.half_width:.3g})"
            )
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", nargs="+", default=list(DEFAULT_WORKLOADS))
    parser.add_argument("--protocols", nargs="+", default=list(DEFAULT_PROTOCOLS))
    parser.add_argument("--scale", type=int, default=1024)
    parser.add_argument(
        "--accesses", type=int, default=3000, help="measured accesses per core"
    )
    parser.add_argument(
        "--warmup", type=int, default=300, help="run-level warm-up accesses per core"
    )
    parser.add_argument("--sockets", type=int, default=4)
    parser.add_argument("--cores-per-socket", type=int, default=8)
    parser.add_argument(
        "--plan",
        default="units=8,detail=60,warmup=40,confidence=0.99,bias_floor=0.03",
        metavar="SPEC",
        help="sampling plan spec ('auto' derives one from the trace length). "
        "The default validates at 99% confidence: the harness checks ~30 "
        "metrics per invocation, so a 95% interval would be expected to "
        "miss one even when the estimator is perfectly calibrated.",
    )
    parser.add_argument("--seed", type=int, default=1, help="workload RNG seed")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    plan = None if args.plan == "auto" else SamplingPlan.from_spec(args.plan)
    failures = 0
    pairs = [(w, p) for w in args.workloads for p in args.protocols]
    for workload, protocol in pairs:
        exact, sampled, exact_s, sampled_s, violations = run_pair(
            workload,
            protocol,
            scale=args.scale,
            accesses=args.accesses,
            warmup=args.warmup,
            sockets=args.sockets,
            cores_per_socket=args.cores_per_socket,
            plan=plan,
            seed=args.seed,
        )
        problems = check_containment(exact.stats, sampled.stats)
        for violation in violations:
            problems.append(f"coherence invariant violated after sampling: {violation}")
        speedup = exact_s / sampled_s if sampled_s > 0 else float("inf")
        status = "ok" if not problems else "FAIL"
        print(
            f"{workload}/{protocol}: {status}  exact {exact_s:.2f}s, "
            f"sampled {sampled_s:.2f}s ({speedup:.2f}x), "
            f"{len(sampled.stats.sampling.metrics)} metrics checked"
        )
        for problem in problems:
            print(f"  {problem}")
            failures += 1
    if failures:
        print(f"\n{failures} containment/invariant failure(s)")
        return 1
    print(f"\nall {len(pairs)} pairs contained; sampling is statistically sound here")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
