#!/usr/bin/env python3
"""CI chaos smoke: a campaign must survive injected faults bit-identically.

Runs the quick four-point campaign twice -- once fault-free, once under a
seeded fault plan (20% transient worker-crash rate, one always-failing
poison point, one injected hang shorter than the watchdog budget) -- and
asserts the tentpole invariant of docs/robustness.md:

* the faulted campaign completes instead of aborting,
* exactly the poison point is quarantined to ``failures.jsonl``,
* the surviving points' merged statistics are bit-identical to the
  fault-free run's over the same subset,

then corrupts the store on purpose and checks that ``repro store verify``
flags it and ``repro store repair`` restores it so every read succeeds.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py --work-dir chaos-work

Exits 0 on success, 1 with a message on the first violated assertion.
"""

from __future__ import annotations

import argparse
import io
import sys
from pathlib import Path

from repro.experiments.campaign import (
    CampaignSpec,
    campaign_status,
    merged_point_stats,
    run_campaign,
)
from repro.experiments.runner import FailurePolicy, sweep_point_key
from repro.stats.counters import SimulationStats
from repro.stats.store import ResultsStore
from repro.testing import faults
from repro.testing.faults import FaultPlan

SPEC = CampaignSpec.from_dict({
    "name": "chaos-smoke",
    "settings": {
        "scale": 4096,
        "accesses_per_thread": 150,
        "warmup_accesses_per_thread": 50,
        "num_sockets": 2,
        "cores_per_socket": 1,
    },
    "sweeps": [
        {
            "protocols": ["baseline", "c3d"],
            "workloads": ["facesim", "streamcluster"],
            "topologies": [{"sockets": 2, "cores_per_socket": 1}],
        }
    ],
})

#: The point that must end up quarantined (matches exactly one grid point).
POISON = {"workload": "streamcluster", "protocol": "c3d"}

#: A point that hangs for 1 s -- well under the watchdog budget, so it must
#: still complete (slow, not dead).
HANG = {"workload": "facesim", "protocol": "baseline"}

PLAN = FaultPlan(
    seed=7,
    crash_rate=0.2,
    poison=(POISON,),
    hang_points=(HANG,),
    hang_s=1.0,
)

POLICY = FailurePolicy(max_attempts=5, timeout_s=60.0, backoff_s=0.05, seed=7)


def fail(message: str) -> None:
    print(f"chaos-smoke: FAIL: {message}")
    sys.exit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--work-dir", default="chaos-work", metavar="DIR",
                        help="scratch directory for the stores (default: "
                             "chaos-work)")
    args = parser.parse_args(argv)
    work = Path(args.work_dir)

    points = SPEC.expand()
    poison_points = [
        p for p in points if PLAN.is_poison(
            {"workload": p.workload, "protocol": p.protocol}
        )
    ]
    if len(poison_points) != 1:
        fail(f"poison matcher hit {len(poison_points)} points, expected 1")
    poison_key = sweep_point_key(poison_points[0], SPEC.engine)

    # --- Reference: fault-free run. -----------------------------------
    print(f"chaos-smoke: fault-free reference run ({len(points)} points)")
    clean_store = ResultsStore(work / "clean")
    clean_store.clean()
    clean = run_campaign(SPEC, clean_store, stream=io.StringIO(),
                         failure_policy=POLICY)
    if clean.failed_points:
        fail(f"fault-free run failed {clean.failed_points} point(s)")

    # --- The chaos run. ------------------------------------------------
    print(f"chaos-smoke: faulted run (crash_rate={PLAN.crash_rate}, "
          f"1 poison point, 1 injected {PLAN.hang_s:.0f}s hang)")
    chaos_store = ResultsStore(work / "chaos")
    chaos_store.clean()
    with faults.injected(PLAN):
        summary = run_campaign(SPEC, chaos_store, stream=io.StringIO(),
                               failure_policy=POLICY)

    if summary.failed_points != 1:
        fail(f"expected exactly 1 failed point, got {summary.failed_points}")
    quarantined = chaos_store.failure_log.records()
    if [record.key for record in quarantined] != [poison_key]:
        fail(f"quarantine holds {[r.key[:12] for r in quarantined]}, "
             f"expected exactly the poison point {poison_key[:12]}")
    if not quarantined[0].traceback:
        fail("quarantine record is missing its captured traceback")
    status = campaign_status(SPEC, ResultsStore(work / "chaos"))
    if status["points_quarantined"] != 1:
        fail(f"campaign status reports {status['points_quarantined']} "
             f"quarantined point(s), expected 1")

    # --- Bit-identical survivors. --------------------------------------
    survivors_reference = SimulationStats()
    for point in points:
        key = sweep_point_key(point, SPEC.engine)
        if key == poison_key:
            continue
        survivors_reference.merge(clean_store.get(key).stats)
    chaos_merged = merged_point_stats(
        SPEC, ResultsStore(work / "chaos"), skip_missing=True
    )
    if chaos_merged.to_json_dict() != survivors_reference.to_json_dict():
        fail("surviving points' merged stats differ from the fault-free run")
    print("chaos-smoke: survivors merged bit-identically to the clean run")

    # --- Store integrity: verify flags damage, compact restores. -------
    damaged_any = False
    for shard_file in ResultsStore(work / "chaos").shard_paths():
        text = shard_file.read_text(encoding="utf-8")
        damaged = text.replace('"reads":', '"raeds":', 1)  # still valid JSON
        if damaged != text:
            shard_file.write_text(damaged, encoding="utf-8")
            damaged_any = True
            break
    if not damaged_any:
        fail("could not damage the store (no '\"reads\":' in any shard?)")

    damaged_store = ResultsStore(work / "chaos")
    report = damaged_store.verify()
    if report.clean:
        fail("verify called a deliberately corrupted store clean")
    print(f"chaos-smoke: verify flagged the damage "
          f"({len(report.issues)} bad line(s))")
    damaged_store.repair()
    after = ResultsStore(work / "chaos")
    if not after.verify().clean:
        fail("store still not clean after repair")
    for record in after.records():
        if after.get(record.key) is None:
            fail(f"read of {record.key[:12]}... failed after repair")
    print("chaos-smoke: repair restored the store (all reads succeed)")

    # The damaged record was dropped; the next campaign run re-executes it
    # (and the quarantined poison point is retried -- by design).
    print("chaos-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
