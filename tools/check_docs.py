#!/usr/bin/env python3
"""Fail on broken intra-repo links in README.md and docs/*.md.

Scans every markdown link and image reference (``[text](target)`` /
``![alt](target)``) in the repo's user-facing documentation.  External
targets (``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``)
are ignored; every other target is resolved relative to the containing file
(anchors and query strings stripped) and must exist in the working tree.

Usage::

    python tools/check_docs.py            # from the repo root
    python tools/check_docs.py README.md docs/workloads.md

Exits 0 when every link resolves, 1 otherwise (listing each broken link as
``file:line: target``).  Used by the CI ``docs`` job and by
``tests/docs/test_doc_links.py``; stdlib-only on purpose.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Markdown inline link/image: [text](target) or ![alt](target).  Nested
#: parentheses inside targets are not supported (none are used in this repo).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = ("http://", "https://", "mailto:")

#: Documentation pages that must exist (the docs/*.md glob would silently
#: shrink if one were deleted or renamed; this list pins the expected set).
REQUIRED_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/campaigns.md",
    "docs/experiments.md",
    "docs/ingestion.md",
    "docs/performance.md",
    "docs/robustness.md",
    "docs/sampling.md",
    "docs/serving.md",
    "docs/workloads.md",
)

#: Load-bearing content that must survive edits to the pages above: section
#: headings other pages and CI jobs deep-link to, and table rows that must
#: track the code (e.g. the registered-engine table).  Matched as literal
#: substrings of the page text.
REQUIRED_SECTIONS = {
    "docs/performance.md": (
        "## Vectorized execution",
        "vector_speedup_",
        "## Parallel windows",
        "parallel_speedup_",
    ),
    "docs/architecture.md": (
        "## Execution engines",
        "| `vector` |",
        "| `sampled-par` |",
        "## Serving layer",
        "`repro.api`",
    ),
    "docs/ingestion.md": (
        "## Import formats",
        "## Clone fitting and its tolerances",
        "workload-profile/v1",
        "workload-clone/v1",
    ),
    "docs/serving.md": (
        "## The sharded store layout (`sharded/v1`)",
        "## Migrating a legacy store",
        "### HTTP API",
        "## Concurrency model",
        "sharded/v1",
    ),
}


def missing_required_sections(root: Path) -> List[str]:
    """``page: heading`` for each pinned section absent from its page."""
    missing: List[str] = []
    for rel, needles in REQUIRED_SECTIONS.items():
        page = root / rel
        if not page.is_file():
            continue  # already reported by missing_required_docs
        text = page.read_text()
        missing.extend(f"{rel}: {needle!r}" for needle in needles if needle not in text)
    return missing


def repo_root() -> Path:
    """The repository root (parent of this script's directory)."""
    return Path(__file__).resolve().parent.parent


def default_documents(root: Path) -> List[Path]:
    """The documents checked by default: README.md plus every docs/*.md."""
    documents = [root / "README.md"]
    documents.extend(sorted((root / "docs").glob("*.md")))
    return [d for d in documents if d.is_file()]


def missing_required_docs(root: Path) -> List[str]:
    """Required pages (``REQUIRED_DOCS``) absent from the working tree."""
    return [rel for rel in REQUIRED_DOCS if not (root / rel).is_file()]


def broken_links(document: Path) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every unresolvable link."""
    for lineno, line in enumerate(document.read_text().splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0].split("?", 1)[0]
            if not path_part:
                continue
            resolved = (document.parent / path_part).resolve()
            if not resolved.exists():
                yield lineno, target


def main(argv: List[str]) -> int:
    root = repo_root()
    if not argv:
        missing = missing_required_docs(root)
        if missing:
            print(f"{len(missing)} required documentation page(s) missing:")
            for rel in missing:
                print(f"  {rel}")
            return 1
        gone = missing_required_sections(root)
        if gone:
            print(f"{len(gone)} pinned documentation section(s) missing:")
            for entry in gone:
                print(f"  {entry}")
            return 1
    documents = [Path(arg).resolve() for arg in argv] or default_documents(root)
    failures: List[str] = []
    checked = 0
    for document in documents:
        checked += 1
        try:
            shown = document.relative_to(root)
        except ValueError:  # explicit argument outside the repo
            shown = document
        for lineno, target in broken_links(document):
            failures.append(f"{shown}:{lineno}: {target}")
    if failures:
        print(f"{len(failures)} broken intra-repo link(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"checked {checked} document(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
