#!/usr/bin/env python3
"""CI performance-regression gate over ``repro bench`` output.

Compares the most recent record of a bench output file (the JSON list
``repro bench`` appends to) against the committed reference in
``benchmarks/baseline.json``.  Two gates share the file:

* **measurements** (the default): every measurement key present in the
  baseline must reach at least ``tolerance * baseline`` accesses/sec.  The
  tolerance absorbs runner-to-runner noise; a real hot-path regression (or
  an accidentally quadratic change) lands well below it.
* **speedups** (``--speedups``): every key of the baseline's ``speedups``
  section -- the ``sampled_speedup_*`` exact-vs-sampled ratios ``repro
  bench --sampled`` records, the ``vector_speedup_*`` object-vs-vector
  ratios recorded whenever both engines are benched, and the
  ``parallel_speedup_*`` serial-vs-parallel sampled ratios recorded when
  ``sampled`` and ``sampled-par`` are benched together -- must reach its
  committed floor.  Ratios of two runs on the same machine are largely
  noise-immune, so the floors are applied directly (no tolerance factor).
  ``--speedups-prefix`` limits the gate to one engine family's floors, so
  the sampling, vector and parallel CI jobs each gate only the ratios
  their own bench invocation produced.

By default the gate reads the *latest* record of the history file;
``--record-index`` (Python list indexing) or ``--timestamp`` pins a
specific record instead, so a job appending to a shared history can gate
exactly the record it just produced.

Usage::

    PYTHONPATH=src python -m repro bench --accesses 100 --rounds 2 \
        --output bench_regression.json
    python tools/check_bench_regression.py bench_regression.json

    PYTHONPATH=src python -m repro bench --accesses 2500 --rounds 2 \
        --protocols baseline c3d --engines compiled --sampled \
        --output bench_sampled.json
    python tools/check_bench_regression.py bench_sampled.json \
        --speedups --speedups-prefix sampled_

    PYTHONPATH=src python -m repro bench --workload hotset --scale 1 \
        --accesses 24000 --rounds 2 --protocols baseline c3d \
        --engines compiled object vector --output bench_vector.json
    python tools/check_bench_regression.py bench_vector.json \
        --speedups --speedups-prefix vector_

    PYTHONPATH=src python -m repro bench --workload hotset --scale 1 \
        --accesses 2500 --rounds 2 --protocols baseline c3d \
        --engines sampled sampled-par --engine-jobs 4 \
        --sample-plan units=8,detail=250,warmup=25 \
        --output bench_parallel.json
    python tools/check_bench_regression.py bench_parallel.json \
        --speedups-prefix parallel_ --record-index -1

Exits 0 when every gated value clears, 1 otherwise (listing each
regression).  The CI ``bench-regression`` job uploads the fresh output as a
workflow artifact so the committed baseline can be refreshed from a healthy
build (see the note inside ``benchmarks/baseline.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"


def select_record(
    path: Path, *, index: Optional[int] = None, timestamp: Optional[str] = None
) -> dict:
    """Pick one record of a ``repro bench`` output file.

    By default the most recent record (``index=-1``); a CI job that just
    appended its own record to a shared history pins the exact one it
    produced with ``index`` (Python list semantics, negatives count from the
    end) or with the record's ``timestamp`` field.  A single-record file (a
    bare JSON object, not a list) is returned as-is for either selector.
    """
    if index is not None and timestamp is not None:
        raise ValueError("pass either index or timestamp, not both")
    history = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(history, list):
        return history
    if not history:
        raise ValueError(f"{path} contains an empty history")
    if timestamp is not None:
        matches = [r for r in history if r.get("timestamp") == timestamp]
        if not matches:
            stamps = [r.get("timestamp", "?") for r in history]
            raise ValueError(
                f"{path} has no record with timestamp {timestamp!r} "
                f"(available: {stamps})"
            )
        return matches[-1]
    try:
        return history[index if index is not None else -1]
    except IndexError:
        raise ValueError(
            f"{path} has {len(history)} record(s); index {index} is out of range"
        ) from None


def latest_record(path: Path) -> dict:
    """The most recent record of a ``repro bench`` output file."""
    return select_record(path)


def check(record: dict, baseline: dict, tolerance: Optional[float] = None) -> List[str]:
    """Return one message per measurement below ``tolerance * baseline``."""
    if tolerance is None:
        tolerance = baseline.get("tolerance", 0.7)
    failures: List[str] = []
    measured = record.get("measurements", {})
    for key, reference in baseline["measurements"].items():
        floor = tolerance * reference["accesses_per_sec"]
        entry = measured.get(key)
        if entry is None:
            failures.append(f"{key}: missing from the bench record")
            continue
        rate = entry["accesses_per_sec"]
        verdict = "ok" if rate >= floor else "REGRESSION"
        print(
            f"{key:<22s} {rate:>12,.0f} acc/s  "
            f"(baseline {reference['accesses_per_sec']:,.0f}, "
            f"floor {floor:,.0f})  {verdict}"
        )
        if rate < floor:
            failures.append(
                f"{key}: {rate:,.0f} accesses/sec is below the regression "
                f"floor {floor:,.0f} ({tolerance:.0%} of baseline "
                f"{reference['accesses_per_sec']:,.0f})"
            )
    return failures


def check_speedups(
    record: dict, baseline: dict, prefix: Optional[str] = None
) -> List[str]:
    """Gate the record's top-level speedup ratios against committed floors.

    The baseline's ``speedups`` section maps record keys (e.g.
    ``sampled_speedup_c3d``, ``vector_speedup_baseline``) to minimum
    acceptable ratios.  Ratios compare two runs of the same invocation on
    the same machine, so the floors are enforced directly -- no noise
    tolerance factor.  ``prefix`` restricts the gate to floors whose key
    starts with it, so CI jobs that each bench one engine family gate only
    the ratios their bench invocation produced.
    """
    failures: List[str] = []
    floors = baseline.get("speedups", {})
    if prefix:
        floors = {key: f for key, f in floors.items() if key.startswith(prefix)}
    if not floors:
        failures.append(
            f"baseline has no 'speedups' entries matching prefix {prefix!r}"
            if prefix
            else "baseline has no 'speedups' section to gate against"
        )
        return failures
    for key, floor in floors.items():
        value = record.get(key)
        if value is None:
            failures.append(
                f"{key}: missing from the bench record (was the bench run "
                "with the engines that produce this ratio?)"
            )
            continue
        verdict = "ok" if value >= floor else "REGRESSION"
        print(f"{key:<28s} {value:>6.2f}x  (floor {floor:.2f}x)  {verdict}")
        if value < floor:
            failures.append(
                f"{key}: {value:.2f}x is below the committed floor {floor:.2f}x"
            )
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("record", help="bench output JSON (repro bench --output)")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed reference file (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline file's tolerance (fraction of baseline)",
    )
    parser.add_argument(
        "--speedups",
        action="store_true",
        help="gate the baseline's 'speedups' section (sampled_speedup_*, "
        "vector_speedup_*) instead of the throughput measurements",
    )
    parser.add_argument(
        "--speedups-prefix",
        default=None,
        metavar="PREFIX",
        help="with --speedups (implied), gate only floors whose key starts "
        "with PREFIX (e.g. 'sampled_', 'vector_' or 'parallel_')",
    )
    selector = parser.add_mutually_exclusive_group()
    selector.add_argument(
        "--record-index",
        type=int,
        default=None,
        metavar="I",
        help="gate history record I instead of the latest (Python list "
        "indexing; -1 = latest)",
    )
    selector.add_argument(
        "--timestamp",
        default=None,
        metavar="TS",
        help="gate the history record whose 'timestamp' field equals TS",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        record = select_record(
            Path(args.record), index=args.record_index, timestamp=args.timestamp
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    if args.speedups or args.speedups_prefix:
        failures = check_speedups(record, baseline, args.speedups_prefix)
    else:
        failures = check(record, baseline, args.tolerance)
    stamp = record.get("timestamp", "?")
    sha = record.get("git_sha") or "unknown-sha"
    if failures:
        print(f"\nbench regression gate FAILED for {sha} @ {stamp}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nbench regression gate passed for {sha} @ {stamp}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
