"""Benchmark: regenerate Fig. 6 (4-socket speedups over the baseline)."""

from conftest import run_once

from repro.experiments.fig6 import format_fig6, run_fig6


def test_fig6_quad_socket_speedups(benchmark, context):
    series = run_once(benchmark, lambda: run_fig6(context))
    print("\n" + format_fig6(series))

    geomean = series["geomean"]
    benchmark.extra_info.update({f"speedup[{k}]": v for k, v in geomean.items()})

    # Paper shape for the quad-socket machine:
    #  * C3D improves over the baseline on every workload (6.4-50.7%),
    #  * streamcluster is C3D's biggest winner,
    #  * the idealised c3d-full-dir is only marginally better than c3d,
    #  * snoopy is the weakest of the DRAM-cache designs,
    #  * full-dir never beats c3d.
    per_workload = {name: row for name, row in series.items() if name != "geomean"}
    assert all(row["c3d"] > 1.0 for row in per_workload.values())
    assert max(per_workload, key=lambda w: per_workload[w]["c3d"]) == "streamcluster"
    assert abs(geomean["c3d-full-dir"] - geomean["c3d"]) < 0.05
    assert geomean["snoopy"] <= geomean["full-dir"]
    assert geomean["c3d"] >= geomean["full-dir"] - 0.01
    assert geomean["c3d"] > 1.05
