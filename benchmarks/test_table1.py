"""Benchmark: regenerate Table I (remote-memory access fractions)."""

from conftest import run_once

from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1


def test_table1_remote_memory_fractions(benchmark, context):
    measured = run_once(benchmark, lambda: run_table1(context))
    print("\n" + format_table1(measured))

    # Paper: the vast majority of memory accesses are remote (avg ~73.5%),
    # with tunkrank the least remote workload.  Check the shape.
    average = sum(measured.values()) / len(measured)
    benchmark.extra_info["average_remote_fraction"] = average
    benchmark.extra_info["paper_average"] = sum(PAPER_TABLE1.values()) / len(PAPER_TABLE1)
    assert average > 0.5
    assert measured["tunkrank"] == min(measured.values())
