"""Benchmark: regenerate Fig. 11 (sensitivity to inter-socket latency)."""

from conftest import run_once

from repro.experiments.fig11 import format_fig11, run_fig11


def test_fig11_inter_socket_latency_sensitivity(benchmark, context, sensitivity_workloads):
    series = run_once(
        benchmark, lambda: run_fig11(context, workloads=sensitivity_workloads)
    )
    print("\n" + format_fig11(series))

    benchmark.extra_info.update(
        {f"c3d[{point}]": row["c3d"] for point, row in series.items()}
    )

    # Paper shape: C3D still helps at an unrealistically fast 5 ns/hop, its
    # advantage grows with the inter-socket latency, and it consistently
    # outperforms snoopy and full-dir across the sweep.
    assert series["5ns"]["c3d"] > 1.0
    assert series["30ns"]["c3d"] >= series["5ns"]["c3d"]
    for point, row in series.items():
        assert row["c3d"] >= row["snoopy"] - 0.02
        assert row["c3d"] >= row["full-dir"] - 0.02
