"""Benchmark: regenerate Fig. 9 (inter-socket traffic vs. the baseline)."""

from conftest import run_once

from repro.experiments.fig9 import format_fig9, run_fig9


def test_fig9_inter_socket_traffic(benchmark, context):
    series = run_once(benchmark, lambda: run_fig9(context))
    print("\n" + format_fig9(series))

    average = series["average"]
    benchmark.extra_info.update(average)

    # Paper shape: C3D reduces inter-socket traffic vs. the baseline (35.9%
    # average), is within a modest margin of the idealised full directory
    # (broadcast control packets are small), and snoopy is by far the worst.
    assert average["c3d"] < 1.0
    assert average["snoopy"] > average["c3d"]
    assert average["snoopy"] > 1.0
    assert average["c3d"] < average["c3d-full-dir"] * 1.6
    assert average["full-dir"] <= average["snoopy"]
