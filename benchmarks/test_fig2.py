"""Benchmark: regenerate Fig. 2 (NUMA bottleneck analysis)."""

from conftest import run_once

from repro.experiments.fig2 import format_fig2, run_fig2


def test_fig2_numa_bottleneck_analysis(benchmark, context):
    series = run_once(benchmark, lambda: run_fig2(context))
    print("\n" + format_fig2(series))

    geomean = series["geomean"]
    benchmark.extra_info.update({f"speedup[{k}]": v for k, v in geomean.items()})

    # Paper shape: zero QPI latency gives double-digit speedups, infinite
    # bandwidth (memory or QPI) gives almost nothing.
    assert geomean["0_qpi_lat"] > 1.05
    assert geomean["inf_mem_bw"] < geomean["0_qpi_lat"]
    assert geomean["inf_qpi_bw"] < geomean["0_qpi_lat"]
    assert geomean["inf_mem_bw + inf_qpi_bw"] < geomean["0_qpi_lat"]
