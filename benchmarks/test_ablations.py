"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not figures from the paper; they isolate the contribution of the
individual C3D mechanisms:

* clean (write-through) DRAM cache vs. the dirty victim-cache policy,
  holding the directory organisation fixed -- i.e. c3d vs. full-dir;
* the region miss predictor on vs. off (how much of the DRAM-cache latency
  is hidden on misses);
* the TLB broadcast filter on vs. off (already covered functionally by the
  VI-C study; here we check it never hurts performance).
"""

from dataclasses import replace

from conftest import run_once

from repro.experiments.common import speedup
from repro.stats.report import format_table

ABLATION_WORKLOADS = ("streamcluster", "facesim")


def test_ablation_clean_vs_dirty_dram_cache(benchmark, context):
    """Clean write-through caches give up nothing vs. dirty caches for C3D-style
    coherence while avoiding every remote DRAM-cache read."""

    def run():
        rows = {}
        for workload in ABLATION_WORKLOADS:
            baseline = context.run(workload, "baseline")
            clean = context.run(workload, "c3d")
            dirty = context.run(workload, "full-dir")
            rows[workload] = {
                "clean (c3d)": speedup(baseline, clean),
                "dirty (full-dir)": speedup(baseline, dirty),
                "remote dram hits (dirty)": dirty.stats.served_remote_dram_cache,
            }
        return rows

    rows = run_once(benchmark, run)
    print("\n" + format_table(
        ["workload", "clean (c3d)", "dirty (full-dir)", "remote dram hits (dirty)"],
        [[w, r["clean (c3d)"], r["dirty (full-dir)"], r["remote dram hits (dirty)"]]
         for w, r in rows.items()],
        title="Ablation: clean write-through vs. dirty victim DRAM cache",
    ))
    for row in rows.values():
        assert row["clean (c3d)"] >= row["dirty (full-dir)"] - 0.02
        assert row["remote dram hits (dirty)"] > 0


def test_ablation_miss_predictor(benchmark, context):
    """Disabling the region miss predictor exposes the DRAM array latency on
    every miss and can only slow C3D down."""

    def run():
        results = {}
        for workload in ABLATION_WORKLOADS:
            with_predictor = context.run(workload, "c3d")
            config = context.make_config("c3d")
            config = replace(
                config, dram_cache=replace(config.dram_cache, predictor_entries=1)
            )
            without = context.run(
                workload, "c3d", config=config, cache_key_extra=("no-predictor",)
            )
            results[workload] = (
                with_predictor.total_time_ns,
                without.total_time_ns,
            )
        return results

    results = run_once(benchmark, run)
    print("\nAblation: region miss predictor (execution time, ns)")
    for workload, (with_mp, without_mp) in results.items():
        print(f"  {workload:15s} with={with_mp:12.0f}  crippled={without_mp:12.0f}")
        # A crippled (1-entry) predictor must not be faster than the real one
        # by more than noise.
        assert without_mp > with_mp * 0.95


def test_ablation_broadcast_filter_never_hurts(benchmark, context):
    """The TLB filter can only remove work, so C3D+filter is never slower."""

    def run():
        results = {}
        for workload in ABLATION_WORKLOADS:
            plain = context.run(workload, "c3d")
            config = context.make_config("c3d", broadcast_filter=True)
            filtered = context.run(
                workload, "c3d", config=config, cache_key_extra=("filter-on",)
            )
            results[workload] = (plain.total_time_ns, filtered.total_time_ns)
        return results

    results = run_once(benchmark, run)
    for workload, (plain, filtered) in results.items():
        print(f"  {workload:15s} plain={plain:12.0f}  filtered={filtered:12.0f}")
        assert filtered <= plain * 1.05
