"""Benchmark: regenerate Fig. 10 (sensitivity to DRAM-cache latency)."""

from conftest import run_once

from repro.experiments.fig10 import format_fig10, run_fig10


def test_fig10_dram_cache_latency_sensitivity(benchmark, context, sensitivity_workloads):
    series = run_once(
        benchmark, lambda: run_fig10(context, workloads=sensitivity_workloads)
    )
    print("\n" + format_fig10(series))

    benchmark.extra_info.update(
        {f"c3d[{point}]": row["c3d"] for point, row in series.items()}
    )

    # Paper shape: C3D keeps a clear gain even when the DRAM cache is as slow
    # as memory (50 ns), gains more with a faster cache (30 ns), and always
    # beats snoopy.
    assert series["50ns"]["c3d"] > 1.02
    assert series["30ns"]["c3d"] >= series["50ns"]["c3d"]
    for point in series:
        assert series[point]["c3d"] >= series[point]["snoopy"]
