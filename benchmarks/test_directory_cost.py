"""Benchmark: section III-B directory storage costs and measured occupancy."""

from conftest import run_once

from repro.experiments.directory_cost import (
    run_directory_occupancy,
    storage_cost_table,
)
from repro.experiments.common import ExperimentSettings


def test_directory_storage_costs_and_occupancy(benchmark, settings):
    table = storage_cost_table()
    occupancy = run_once(
        benchmark,
        lambda: run_directory_occupancy(
            ExperimentSettings(
                scale=settings.scale,
                accesses_per_thread=max(400, settings.accesses_per_thread // 3),
                warmup_accesses_per_thread=0,
                num_sockets=4,
                cores_per_socket=2,
            ),
            workload="facesim",
        ),
    )
    print("\nSparse directory storage (paper section III-B):")
    for name, megabytes in table.items():
        print(f"  {name:30s} {megabytes:7.1f} MB")
    print(f"Measured peak directory entries: {occupancy}")

    benchmark.extra_info.update(occupancy)
    # Paper arithmetic reproduced exactly.
    assert round(table["256MB cache, 2x sparse"]) == 32
    assert round(table["1GB cache, 2x sparse"]) == 128
    # C3D's non-inclusive directory needs far fewer entries than full-dir's.
    assert occupancy["full-dir"] > 2 * occupancy["c3d"]
