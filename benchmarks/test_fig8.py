"""Benchmark: regenerate Fig. 8 (C3D memory traffic vs. the baseline)."""

from conftest import run_once

from repro.experiments.fig8 import format_fig8, run_fig8


def test_fig8_c3d_memory_traffic(benchmark, context):
    series = run_once(benchmark, lambda: run_fig8(context))
    print("\n" + format_fig8(series))

    average = series["average"]
    benchmark.extra_info.update(average)

    # Paper shape: reads drop sharply (70.9% avg reduction, up to 99% for
    # streamcluster), writes are unchanged (write-through caches), and the
    # total drops as a result (49% avg).
    assert average["reads"] < 0.85
    assert 0.7 < average["writes"] < 1.3
    assert average["total"] < 1.0
    assert series["streamcluster"]["reads"] == min(
        row["reads"] for name, row in series.items() if name != "average"
    )
