"""Benchmark: regenerate Fig. 7 (2-socket speedups over the baseline)."""

from conftest import run_once

from repro.experiments.fig7 import format_fig7, run_fig7


def test_fig7_dual_socket_speedups(benchmark, dual_context):
    series = run_once(benchmark, lambda: run_fig7(dual_context))
    print("\n" + format_fig7(series))

    geomean = series["geomean"]
    benchmark.extra_info.update({f"speedup[{k}]": v for k, v in geomean.items()})

    # Paper shape: the trends follow the 4-socket results, C3D gains on every
    # workload and stays within a few percent of the idealised c3d-full-dir.
    per_workload = {name: row for name, row in series.items() if name != "geomean"}
    assert all(row["c3d"] > 1.0 for row in per_workload.values())
    assert geomean["c3d"] > 1.05
    assert abs(geomean["c3d-full-dir"] - geomean["c3d"]) < 0.05
    assert geomean["c3d"] >= geomean["snoopy"]
