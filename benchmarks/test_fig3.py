"""Benchmark: regenerate Fig. 3 (memory accesses vs. cache capacity)."""

from conftest import run_once

from repro.experiments.fig3 import format_fig3, run_fig3


def test_fig3_memory_accesses_vs_cache_size(benchmark, context):
    series = run_once(benchmark, lambda: run_fig3(context))
    print("\n" + format_fig3(series))

    average = series["average"]
    benchmark.extra_info.update(average)

    # Paper shape: growing the cache towards 1 GB keeps removing memory
    # accesses (38.6-45.5% fewer at 1 GB on average).
    assert average["1GB"] <= average["256MB"] <= average["64MB"] + 0.02
    assert average["1GB"] < 0.9
    # streamcluster's working set fits: its 1 GB point is among the lowest.
    assert series["streamcluster"]["1GB"] <= average["1GB"] + 0.05
