"""Microbenchmark: raw simulator throughput (accesses per second).

Not a paper figure -- this tracks the cost of the simulation infrastructure
itself so that regressions in the hot path (cache lookups, protocol
transactions, interconnect accounting) are visible.  pytest-benchmark's
statistics are meaningful here, so unlike the figure benchmarks this one uses
several rounds.

Both execution engines are measured: ``compiled`` (the array-backed fast
engine) and ``object`` (the legacy one-dataclass-per-access engine the seed
shipped with, kept as the reference implementation).  The engines produce
bit-identical statistics -- ``tests/system/test_engine_equivalence.py`` is
the proof -- so the ratio between the two rows is a pure infrastructure
speedup.  ``python -m repro bench`` runs the same scenario from the command
line and appends the numbers to ``BENCH_throughput.json``.
"""

from repro.system.numa_system import NumaSystem
from repro.system.simulator import Simulator
from repro.system.config import SystemConfig
from repro.workloads.registry import make_workload

ACCESSES_PER_CORE = 400
SCALE = 1024


def run_simulation(protocol: str, engine: str = "compiled") -> int:
    config = SystemConfig.quad_socket(protocol=protocol).scaled(SCALE)
    system = NumaSystem(config)
    workload = make_workload(
        "facesim", scale=SCALE, accesses_per_thread=ACCESSES_PER_CORE,
        num_threads=config.total_cores,
    )
    result = Simulator(system, workload, engine=engine).run(prewarm=True)
    return result.accesses_executed


def test_throughput_baseline(benchmark):
    executed = benchmark.pedantic(
        lambda: run_simulation("baseline"), rounds=3, iterations=1, warmup_rounds=1
    )
    assert executed == ACCESSES_PER_CORE * 32


def test_throughput_c3d(benchmark):
    executed = benchmark.pedantic(
        lambda: run_simulation("c3d"), rounds=3, iterations=1, warmup_rounds=1
    )
    assert executed == ACCESSES_PER_CORE * 32


def test_throughput_baseline_object_engine(benchmark):
    executed = benchmark.pedantic(
        lambda: run_simulation("baseline", "object"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert executed == ACCESSES_PER_CORE * 32


def test_throughput_c3d_object_engine(benchmark):
    executed = benchmark.pedantic(
        lambda: run_simulation("c3d", "object"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert executed == ACCESSES_PER_CORE * 32
