"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures using the
``quick`` experiment settings (scale 1024, short traces) so the whole suite
finishes in minutes.  Use ``python -m repro.experiments.runner --full`` for
the higher-fidelity numbers recorded in EXPERIMENTS.md.

The experiment context is session-scoped so runs are shared between figures
(e.g. the Fig. 6 runs are reused by Fig. 8 and Fig. 9).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentContext, ExperimentSettings


def _settings() -> ExperimentSettings:
    if os.environ.get("REPRO_BENCH_FULL"):
        return ExperimentSettings.full()
    return ExperimentSettings.quick()


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return _settings()


@pytest.fixture(scope="session")
def context(settings) -> ExperimentContext:
    """Quad-socket experiment context shared by all benchmarks."""
    return ExperimentContext(settings)


@pytest.fixture(scope="session")
def dual_context(settings) -> ExperimentContext:
    """Dual-socket context (Fig. 7)."""
    return ExperimentContext(settings.dual_socket())


@pytest.fixture(scope="session")
def sensitivity_workloads() -> list:
    """Subset of workloads used by the sensitivity sweeps to bound runtime."""
    return ["streamcluster", "facesim", "cassandra"]


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
