"""Benchmark: regenerate the section VI-C broadcast-filtering study."""

from conftest import run_once

from repro.experiments.broadcast_filter import (
    format_broadcast_filter,
    run_broadcast_filter,
)


def test_broadcast_filter_study(benchmark, context):
    series = run_once(
        benchmark,
        lambda: run_broadcast_filter(
            context, workloads=["facesim", "cassandra"], include_mcf=True
        ),
    )
    print("\n" + format_broadcast_filter(series))

    benchmark.extra_info.update(
        {f"elided[{name}]": row["broadcasts_elided"] for name, row in series.items()}
    )

    # Paper: single-threaded mcf loses essentially all broadcasts; the
    # multi-threaded workloads only a small fraction; overall traffic barely
    # changes either way because data packets dominate.
    assert series["mcf"]["broadcasts_elided"] > 0.9
    for name in ("facesim", "cassandra"):
        assert series[name]["broadcasts_elided"] < 0.6
        assert 0.8 < series[name]["traffic_vs_plain_c3d"] < 1.1
